package cover

import (
	"fmt"
	"sort"
	"testing"

	"aviv/internal/bitset"
)

// genMaxCliquesBoolRef is the pre-bitset Fig. 8 implementation over a
// [][]bool matrix, retained verbatim as a differential oracle: brute
// force caps out around a dozen nodes, but this reference scales to the
// multi-word (n > 64) matrices the packed implementation must also get
// right, and it anchors the old-vs-bitset benchmark.
func genMaxCliquesBoolRef(par [][]bool) [][]int {
	n := len(par)
	var out [][]int
	seen := make(map[string]bool)

	record := func(clique []int) {
		c := append([]int(nil), clique...)
		sort.Ints(c)
		key := fmt.Sprint(c)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}

	parAll := func(i int, clique []int) bool {
		for _, j := range clique {
			if !par[i][j] {
				return false
			}
		}
		return true
	}
	containsInt := func(list []int, x int) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}

	var gen func(clique []int, index int)
	gen = func(clique []int, index int) {
		var cand []int
		for i := 0; i < n; i++ {
			if parAll(i, clique) && !containsInt(clique, i) {
				cand = append(cand, i)
			}
		}
		var rest []int
		for ci, i := range cand {
			universal := true
			for cj, j := range cand {
				if ci != cj && !par[i][j] {
					universal = false
					break
				}
			}
			if universal {
				if i < index {
					return // pruning condition of Fig. 8
				}
				clique = append(clique, i)
			} else {
				rest = append(rest, i)
			}
		}
		if len(rest) == 0 {
			record(clique)
			return
		}
		for _, i := range rest {
			next := index
			if i > next {
				next = i
			}
			gen(append(append([]int(nil), clique...), i), next)
		}
	}

	for i := 0; i < n; i++ {
		gen([]int{i}, i)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return fmt.Sprint(out[a]) < fmt.Sprint(out[b])
	})
	return out
}

// sparseRandomMatrix builds a symmetric matrix where each pair is
// parallel with probability num/den — sparse enough that clique counts
// stay sane past 64 nodes.
func sparseRandomMatrix(seed int64, n, num, den int) [][]bool {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	par := make([][]bool, n)
	for i := range par {
		par[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := next()%uint64(den) < uint64(num)
			par[i][j], par[j][i] = v, v
		}
	}
	return par
}

// TestGenMaxCliquesMultiWord crosses the 64-node word boundary: the
// packed implementation must agree with the retained bool reference on
// sparse matrices of 65..130 nodes, where every bitset row spans
// multiple words and the boundary bits (63, 64, 127, 128) carry cliques.
func TestGenMaxCliquesMultiWord(t *testing.T) {
	for _, tc := range []struct {
		seed     int64
		n        int
		num, den int
	}{
		{1, 65, 1, 10},
		{2, 70, 1, 8},
		{3, 96, 1, 12},
		{4, 128, 1, 16},
		{5, 130, 1, 16},
	} {
		par := sparseRandomMatrix(tc.seed, tc.n, tc.num, tc.den)
		got := GenMaxCliques(par)
		want := genMaxCliquesBoolRef(par)
		if len(got) != len(want) {
			t.Fatalf("n=%d seed=%d: got %d cliques, want %d", tc.n, tc.seed, len(got), len(want))
		}
		for i := range got {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("n=%d seed=%d: clique %d = %v, want %v", tc.n, tc.seed, i, got[i], want[i])
			}
		}
	}
}

// TestGenMaxCliquesBoolRefAgreesSmall ties the retained reference to the
// existing brute-force oracle, so the multi-word test above checks the
// packed implementation against a known-good baseline.
func TestGenMaxCliquesBoolRefAgreesSmall(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		n := 2 + int(seed%7)
		par := randomMatrix(seed, n)
		got := genMaxCliquesBoolRef(par)
		want := bruteForceMaxCliques(par)
		gm := map[string]bool{}
		for _, c := range got {
			gm[fmt.Sprint(c)] = true
		}
		if len(gm) != len(want) {
			t.Fatalf("seed %d: ref found %d cliques, brute force %d", seed, len(gm), len(want))
		}
		for _, c := range want {
			sort.Ints(c)
			if !gm[fmt.Sprint(c)] {
				t.Fatalf("seed %d: reference missing clique %v", seed, c)
			}
		}
	}
}

// BenchmarkGenMaxCliques compares the retained bool implementation with
// the packed-bitset one on the same sparse 96-node matrix.
func BenchmarkGenMaxCliques(b *testing.B) {
	par := sparseRandomMatrix(7, 96, 1, 10)
	n := len(par)
	pm := bitset.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if par[i][j] {
				pm.Row(i).Set(j)
			}
		}
	}
	b.Run("boolref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			genMaxCliquesBoolRef(par)
		}
	})
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			GenMaxCliquesBits(pm)
		}
	})
}
