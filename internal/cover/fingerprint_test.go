package cover

import (
	"testing"

	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// TestOptionsFingerprintStability pins down the compile-cache keying
// over options: equal option sets hash equal, every knob that changes
// covering output changes the hash, and a nil LiveOut (pruning off) is
// distinguished from an empty one (everything dead).
func TestOptionsFingerprintStability(t *testing.T) {
	base := DefaultOptions()
	if optionsFingerprint(base) != optionsFingerprint(DefaultOptions()) {
		t.Fatal("identical options hash differently")
	}
	seen := map[[32]byte]string{optionsFingerprint(base): "default"}
	for _, mut := range []struct {
		name string
		mut  func(*Options)
	}{
		{"beam", func(o *Options) { o.BeamWidth = base.BeamWidth + 3 }},
		{"prune", func(o *Options) { o.PruneIncremental = !o.PruneIncremental }},
		{"maxassign", func(o *Options) { o.MaxAssignments = base.MaxAssignments + 1 }},
		{"window", func(o *Options) { o.LevelWindow = base.LevelWindow + 2 }},
		{"cliquebudget", func(o *Options) { o.CliqueBudget = base.CliqueBudget + 512 }},
		{"lookahead", func(o *Options) { o.Lookahead = !o.Lookahead }},
		{"transfer", func(o *Options) { o.TransferParallelismHeuristic = !o.TransferParallelismHeuristic }},
		{"spillaware", func(o *Options) { o.SpillAwareAssignment = !o.SpillAwareAssignment }},
		{"placement", func(o *Options) { o.VarPlacement = map[string]string{"a": "DM2"} }},
		{"liveout-empty", func(o *Options) { o.LiveOut = map[string]bool{} }},
		{"liveout-x", func(o *Options) { o.LiveOut = map[string]bool{"x": true} }},
	} {
		o := DefaultOptions()
		mut.mut(&o)
		fp := optionsFingerprint(o)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("options %q and %q collide", mut.name, prev)
		}
		seen[fp] = mut.name
	}
	// Trace and Cache identity must NOT affect the key.
	traced := DefaultOptions()
	traced.Trace = &Trace{}
	traced.Cache = NewCache()
	if optionsFingerprint(traced) != optionsFingerprint(base) {
		t.Fatal("Trace/Cache identity leaked into the options fingerprint")
	}
}

// TestGraphFingerprintStability checks the intra-search memo keying: the
// same (DAG, assignment) builds to the same fingerprint on every build,
// and different assignments of the same block hash apart.
func TestGraphFingerprintStability(t *testing.T) {
	m := isdl.ExampleArch(4)
	d, err := sndag.Build(fig2Block(), m)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	as := exploreAssignments(d, opts)
	if len(as) < 2 {
		t.Fatalf("expected several assignments, got %d", len(as))
	}
	g1, err := buildGraph(d, as[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := buildGraph(d, as[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if graphFingerprint(g1) != graphFingerprint(g2) {
		t.Fatal("same assignment builds to different graph fingerprints")
	}
	gOther, err := buildGraph(d, as[1], opts)
	if err != nil {
		t.Fatal(err)
	}
	if graphFingerprint(g1) == graphFingerprint(gOther) {
		t.Fatal("distinct assignments collide on the graph fingerprint")
	}
}

// TestMatrixFingerprintStability checks that the parallelism-matrix hash
// depends on the bits, not on object identity.
func TestMatrixFingerprintStability(t *testing.T) {
	m := isdl.ExampleArch(4)
	d, err := sndag.Build(fig2Block(), m)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	a := exploreAssignments(d, opts)[0]
	g, err := buildGraph(d, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	p1 := parallelMatrix(g.nodes, g.machine, opts.LevelWindow)
	p2 := parallelMatrix(g.nodes, g.machine, opts.LevelWindow)
	if matrixFingerprint(p1) != matrixFingerprint(p2) {
		t.Fatal("same matrix hashes differently")
	}
	pWindow := parallelMatrix(g.nodes, g.machine, 1)
	if p1.Equal(pWindow) {
		t.Skip("level window 1 did not change the matrix on this workload")
	}
	if matrixFingerprint(p1) == matrixFingerprint(pWindow) {
		t.Fatal("different matrices collide")
	}
}
