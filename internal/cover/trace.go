package cover

import (
	"fmt"
	"strings"

	"aviv/internal/ir"
	"aviv/internal/sndag"
)

// Trace records the covering run step by step for the figure-reproduction
// harness: assignment-search incremental costs and pruning decisions
// (Fig. 6), generated cliques (Fig. 8), selected instructions, and spill
// events (Fig. 9).
type Trace struct {
	Lines []string
}

func (t *Trace) logf(format string, args ...any) {
	t.Lines = append(t.Lines, fmt.Sprintf(format, args...))
}

func (t *Trace) assignStep(n *ir.Node, alt *sndag.Alt, cost int, pruned bool) {
	mark := ""
	if pruned {
		mark = "  X pruned"
	}
	t.logf("assign n%d:%s on %s: incremental cost %d%s", n.ID, n.Op, alt, cost, mark)
}

// String returns the full trace text.
func (t *Trace) String() string {
	return strings.Join(t.Lines, "\n")
}
