package cover

import (
	"fmt"
	"strings"
	"sync"

	"aviv/internal/ir"
	"aviv/internal/sndag"
)

// Trace records the covering run step by step for the figure-reproduction
// harness: assignment-search incremental costs and pruning decisions
// (Fig. 6), generated cliques (Fig. 8), selected instructions, and spill
// events (Fig. 9). Appends are mutex-guarded so one Trace can be shared
// by coverings running on different goroutines, though line order is
// only meaningful for a serial run (aviv.Compile forces Parallelism 1
// when a Trace is set).
type Trace struct {
	mu    sync.Mutex
	Lines []string
}

// logf appends one formatted trace line. It is safe (and free — one
// branch, no formatting or allocation) on a nil receiver, so call sites
// may log unconditionally; hot paths should still guard with a nil
// check when an argument is itself expensive to build (formatClique).
func (t *Trace) logf(format string, args ...any) {
	if t == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	t.mu.Lock()
	t.Lines = append(t.Lines, line)
	t.mu.Unlock()
}

func (t *Trace) assignStep(n *ir.Node, alt *sndag.Alt, cost int, pruned bool) {
	if t == nil {
		return
	}
	mark := ""
	if pruned {
		mark = "  X pruned"
	}
	t.logf("assign n%d:%s on %s: incremental cost %d%s", n.ID, n.Op, alt, cost, mark)
}

// String returns the full trace text.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return strings.Join(t.Lines, "\n")
}
