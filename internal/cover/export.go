package cover

import (
	"crypto/sha256"

	"aviv/internal/ir"
	"aviv/internal/sndag"
)

// BlockKey returns the persistent-tier content address of one covering
// request — the same key CoverBlock uses for Options.Store — given a
// precomputed machine fingerprint (m.Fingerprint(), which callers that
// key many blocks against one machine should memoize). The key covers
// the block fingerprint, the machine fingerprint, and every Options
// field that can change the covering (including LiveOut and
// VarPlacement; see optionsFingerprint).
//
// internal/delta folds this key into its context fingerprints, so a
// block artifact can never be reused across a change that would have
// altered the covering.
func BlockKey(block *ir.Block, machineFP [sha256.Size]byte, opts Options) [sha256.Size]byte {
	return cacheKey{block: block.Fingerprint(), machine: machineFP, options: optionsFingerprint(opts)}.storeKey()
}

// EncodeResult serializes a covering for a persistent tier, declining
// (ok=false) when the result is not representable. Exported for
// internal/delta, which persists per-block coverings under its own
// context keys; the format is the same versioned codec CoverBlock uses.
func EncodeResult(res *Result) (data []byte, ok bool) { return encodeResult(res) }

// DecodeResult rebuilds a covering from its serialized form against a
// freshly derived Split-Node DAG of the covered block. Any
// inconsistency — version skew, truncation, out-of-range reference, or
// a decoded solution that fails Verify — returns an error, which
// callers must treat as a cache miss.
func DecodeResult(data []byte, dag *sndag.DAG) (*Result, error) { return decodeResult(data, dag) }

// DeletableStore is the optional extension of EntryStore for tiers that
// can drop entries in place. Callers use it to turn an entry that reads
// back fine but no longer decodes (codec version skew surviving the
// storage checksum) into a deletion-as-miss instead of a permanent
// re-decode-and-fail on every lookup.
type DeletableStore interface {
	EntryStore
	// Delete removes the entry for key, if present. Best-effort.
	Delete(key [sha256.Size]byte)
}
