package cover

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"

	"aviv/internal/bitset"
	"aviv/internal/isdl"
)

// coverMemo caches covering solutions within a single CoverDAG call
// (one block, one option set). Distinct functional-unit assignments
// frequently lower to structurally identical solution graphs — the
// alternatives differ on split nodes whose transfer paths converge —
// and the schedulers are deterministic functions of that structure, so
// the second covering of an identical graph is a lookup.
//
// Keys are content fingerprints, never pointers: the graph fingerprint
// covers every field the schedulers and the assembler read (node kinds,
// units, banks, ops, chosen alternatives, transfer steps, and both edge
// relations), and clique-covering entries add the parallelism-matrix
// fingerprint because the initial maximal groupings derive from it.
//
// The memo is disabled (nil) when tracing, so trace output still shows
// every covering in full.
type coverMemo struct {
	entries map[memoKey]memoEntry
	hits    int
}

type memoKey struct {
	algo   byte // 'C' clique covering, 'L' list schedule
	graph  [sha256.Size]byte
	matrix [sha256.Size]byte // zero for algo 'L'
}

type memoEntry struct {
	// window is the LevelWindow the solution was computed under. A hit
	// from a different window is only reusable when the memoized run
	// never spilled: the initial groupings come from the (equal) matrix,
	// and the window is re-read only when spilling forces a rebuild.
	window int
	sol    *Solution
}

func newCoverMemo() *coverMemo {
	return &coverMemo{entries: make(map[memoKey]memoEntry)}
}

func (m *coverMemo) lookup(key memoKey, window int) (*Solution, bool) {
	if m == nil {
		return nil, false
	}
	e, ok := m.entries[key]
	if !ok || (e.window != window && e.sol.SpillCount > 0) {
		return nil, false
	}
	m.hits++
	return e.sol, true
}

func (m *coverMemo) store(key memoKey, window int, sol *Solution) {
	if m == nil {
		return
	}
	if _, ok := m.entries[key]; !ok {
		m.entries[key] = memoEntry{window: window, sol: sol}
	}
}

// rebindAssignment returns a memoized solution presented as covering the
// requested assignment. The schedule is shared — solutions are immutable
// downstream — but the Assignment field must reflect the candidate that
// won, exactly as a fresh covering would report it.
func rebindAssignment(sol *Solution, a *Assignment) *Solution {
	if sol.Assignment == a {
		return sol
	}
	cp := *sol
	cp.Assignment = a
	return &cp
}

// fpWriter accumulates fingerprint material, length-prefixing every
// field so adjacent records cannot alias.
type fpWriter struct {
	h   hash.Hash
	buf []byte
}

func (w *fpWriter) flush() {
	if len(w.buf) > 0 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *fpWriter) int(v int) {
	w.buf = binary.AppendVarint(w.buf, int64(v))
	if len(w.buf) > 4096 {
		w.flush()
	}
}

func (w *fpWriter) str(s string) {
	w.int(len(s))
	w.buf = append(w.buf, s...)
}

func (w *fpWriter) bool(b bool) {
	if b {
		w.int(1)
	} else {
		w.int(0)
	}
}

func (w *fpWriter) loc(l isdl.Loc) {
	w.int(int(l.Kind))
	w.str(l.Name)
}

// graphFingerprint hashes the complete structure of a solution graph:
// per node (in creation = ID order) the kind, resources, operation,
// chosen alternative, transfer step, carried IR value, and both
// predecessor relations. Two graphs with equal fingerprints drive the
// deterministic schedulers — and the assembler reading n.Alt — to
// identical output.
func graphFingerprint(g *graph) [sha256.Size]byte {
	w := &fpWriter{h: sha256.New()}
	w.int(len(g.nodes))
	for _, n := range g.nodes {
		w.int(int(n.Kind))
		w.str(n.Unit)
		w.str(n.Bank)
		w.int(int(n.Op))
		w.str(n.Var)
		w.loc(n.Step.From)
		w.loc(n.Step.To)
		w.str(n.Step.Bus)
		if n.Value != nil {
			w.int(n.Value.ID)
		} else {
			w.int(-1)
		}
		if n.Alt != nil {
			w.str(n.Alt.Unit.Name)
			w.int(int(n.Alt.Op))
			w.int(len(n.Alt.Covers))
			for _, c := range n.Alt.Covers {
				w.int(c.ID)
			}
			w.int(len(n.Alt.Operands))
			for _, o := range n.Alt.Operands {
				w.int(o.ID)
			}
		} else {
			w.int(-1)
		}
		w.int(len(n.Preds))
		for _, p := range n.Preds {
			w.int(p.ID)
		}
		w.int(len(n.OrdPreds))
		for _, p := range n.OrdPreds {
			w.int(p.ID)
		}
	}
	w.flush()
	var sum [sha256.Size]byte
	w.h.Sum(sum[:0])
	return sum
}

// matrixFingerprint hashes a parallelism matrix's dimension and words.
func matrixFingerprint(pm *bitset.Matrix) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(pm.N()))
	h.Write(buf[:])
	for _, word := range pm.Words() {
		binary.LittleEndian.PutUint64(buf[:], word)
		h.Write(buf[:])
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
