package cover

import (
	"fmt"
	"sort"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// Assignment is one complete functional-unit assignment: a chosen
// alternative for every split node that is not absorbed into a complex
// instruction chosen for one of its users.
type Assignment struct {
	// Choice maps each executing original node (Covers[0] of its chosen
	// alternative) to that alternative.
	Choice map[*ir.Node]*sndag.Alt
	// AbsorbedBy maps interior nodes swallowed by a complex-instruction
	// choice to the executing root node.
	AbsorbedBy map[*ir.Node]*ir.Node
	// HeurCost is the heuristic cost accumulated during the search
	// (transfers + foregone parallelism, Sec. IV-A).
	HeurCost int
}

// UnitOf returns the unit executing the value-producing node n under the
// assignment, resolving absorbed nodes to their executing root.
func (a *Assignment) UnitOf(n *ir.Node) *isdl.Unit {
	if root, ok := a.AbsorbedBy[n]; ok {
		n = root
	}
	if alt, ok := a.Choice[n]; ok {
		return alt.Unit
	}
	return nil
}

// independence precomputes, for a block, whether two nodes have no
// directed path between them in the expression DAG (and therefore could
// execute in parallel, resources permitting).
type independence struct {
	reach map[*ir.Node]map[*ir.Node]bool // reach[a][b]: b reachable from a via operand edges
}

func newIndependence(b *ir.Block) *independence {
	reach := make(map[*ir.Node]map[*ir.Node]bool, len(b.Nodes))
	for _, n := range b.Nodes { // topological order: operands first
		r := make(map[*ir.Node]bool)
		for _, a := range n.Args {
			r[a] = true
			for k := range reach[a] {
				r[k] = true
			}
		}
		reach[n] = r
	}
	return &independence{reach: reach}
}

// Independent reports whether no directed path connects a and b.
func (ind *independence) Independent(a, b *ir.Node) bool {
	if a == b {
		return false
	}
	return !ind.reach[a][b] && !ind.reach[b][a]
}

// exploreAssignments enumerates split-node functional-unit assignments
// (Sec. IV-A). With opts.PruneIncremental it expands, at every split
// node, only the alternatives of minimal incremental cost (ties all
// expanded, Fig. 6); otherwise it expands everything. The result is
// sorted by heuristic cost and truncated to opts.BeamWidth.
func exploreAssignments(d *sndag.DAG, opts Options) []*Assignment {
	order := d.TopDownOrder()
	users := d.Block.Users()
	ind := newIndependence(d.Block)
	dm := isdl.MemLoc(d.Machine.DataMemory().Name)

	var out []*Assignment
	choice := make(map[*ir.Node]*sndag.Alt)
	absorbed := make(map[*ir.Node]*ir.Node)
	// unitOps counts executing operations per unit along the current DFS
	// path, for the spill-aware cost term (Sec. VI ongoing work): every
	// operation's result occupies a register in the unit's file for some
	// time, so crowding far more operations onto a unit than it has
	// registers predicts spills.
	unitOps := make(map[string]int)

	// incCost computes the incremental cost of executing node n with alt:
	// required transfers to already-assigned users and from leaf/load
	// operands, plus one per already-assigned independent node placed on
	// the same unit (parallelism foregone).
	incCost := func(n *ir.Node, alt *sndag.Alt) int {
		cost := 0
		uloc := isdl.UnitLoc(alt.Unit.Regs.Name)
		// Transfers to users already assigned (processed earlier in
		// top-down order). Includes store users (value must reach DM).
		for _, covered := range alt.Covers {
			for _, u := range users[covered] {
				if u.Op == ir.OpStore {
					if c := d.Machine.PathCost(uloc, dm); c > 0 {
						cost += c
					}
					continue
				}
				// Resolve the user's executing alternative, if any.
				exec := u
				if root, ok := absorbed[u]; ok {
					exec = root
				}
				ualt, ok := choice[exec]
				if !ok {
					continue
				}
				// Only if the covered value actually feeds the user's
				// chosen alternative (not swallowed inside it).
				feeds := false
				for _, op := range ualt.Operands {
					if op == covered {
						feeds = true
						break
					}
				}
				if !feeds {
					continue
				}
				if c := d.Machine.PathCost(uloc, isdl.UnitLoc(ualt.Unit.Regs.Name)); c > 0 {
					cost += c
				}
			}
		}
		// Transfers from load operands. Loads that feed an interior node
		// absorbed by a complex instruction are not charged: a simple
		// alternative for that interior node would pay them anyway, and
		// charging them here would unfairly prune complex matches.
		interiorLoads := make(map[*ir.Node]bool)
		for _, m := range alt.Covers[1:] {
			for _, arg := range m.Args {
				if arg.Op == ir.OpLoad {
					interiorLoads[arg] = true
				}
			}
		}
		for _, op := range alt.Operands {
			if op.Op == ir.OpLoad && !interiorLoads[op] {
				if c := d.Machine.PathCost(dm, uloc); c > 0 {
					cost += c
				}
			}
		}
		// Parallelism foregone: previously assigned independent nodes on
		// the same unit.
		for m, malt := range choice {
			if malt.Unit == alt.Unit && ind.Independent(m, n) {
				cost++
			}
		}
		// Register resource limits: penalize crowding a unit beyond its
		// register file (one point per op beyond the file size).
		if opts.SpillAwareAssignment {
			if excess := unitOps[alt.Unit.Name] + 1 - alt.Unit.Regs.Size; excess > 0 {
				cost += excess
			}
		}
		return cost
	}

	var dfs func(i, costSoFar int)
	dfs = func(i, costSoFar int) {
		if opts.MaxAssignments > 0 && len(out) >= opts.MaxAssignments {
			return
		}
		// Skip splits absorbed by a complex choice made above.
		for i < len(order) {
			if _, isAbsorbed := absorbed[order[i].Orig]; !isAbsorbed {
				break
			}
			i++
		}
		if i == len(order) {
			a := &Assignment{
				Choice:     make(map[*ir.Node]*sndag.Alt, len(choice)),
				AbsorbedBy: make(map[*ir.Node]*ir.Node, len(absorbed)),
				HeurCost:   costSoFar,
			}
			for k, v := range choice {
				a.Choice[k] = v
			}
			for k, v := range absorbed {
				a.AbsorbedBy[k] = v
			}
			out = append(out, a)
			return
		}
		s := order[i]
		costs := make([]int, len(s.Alts))
		viable := make([]bool, len(s.Alts))
		minCost := -1
		for j, alt := range s.Alts {
			// An operation whose distinct register operands cannot fit
			// the unit's register file can never issue; drop the
			// alternative outright.
			if distinctRegOperands(alt) > alt.Unit.Regs.Size {
				continue
			}
			viable[j] = true
			costs[j] = incCost(s.Orig, alt)
			if minCost < 0 || costs[j] < minCost {
				minCost = costs[j]
			}
		}
		for j, alt := range s.Alts {
			if !viable[j] {
				continue
			}
			pruned := opts.PruneIncremental && costs[j] > minCost
			if opts.Trace != nil {
				opts.Trace.assignStep(s.Orig, alt, costs[j], pruned)
			}
			if pruned {
				continue
			}
			choice[s.Orig] = alt
			unitOps[alt.Unit.Name]++
			for _, covered := range alt.Covers[1:] {
				absorbed[covered] = s.Orig
			}
			dfs(i+1, costSoFar+costs[j])
			delete(choice, s.Orig)
			unitOps[alt.Unit.Name]--
			for _, covered := range alt.Covers[1:] {
				delete(absorbed, covered)
			}
		}
	}
	dfs(0, 0)

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].HeurCost != out[j].HeurCost {
			return out[i].HeurCost < out[j].HeurCost
		}
		// Tie: prefer assignments with fewer executing operations (i.e.
		// complex instructions absorbing interior nodes).
		return len(out[i].Choice) < len(out[j].Choice)
	})
	if opts.BeamWidth > 0 && len(out) > opts.BeamWidth {
		out = out[:opts.BeamWidth]
	}
	if opts.Trace != nil {
		opts.Trace.logf("assignment search: %d kept (beam %d)", len(out), opts.BeamWidth)
		for i, a := range out {
			opts.Trace.logf("  candidate %d: heuristic cost %d: %s", i, a.HeurCost, describeAssignment(d, a))
		}
	}
	return out
}

// distinctRegOperands counts the distinct register-resident operands an
// alternative reads (constants are immediates and duplicated operands
// share one register).
func distinctRegOperands(alt *sndag.Alt) int {
	seen := make(map[*ir.Node]bool, len(alt.Operands))
	for _, op := range alt.Operands {
		if op.Op != ir.OpConst {
			seen[op] = true
		}
	}
	return len(seen)
}

func describeAssignment(d *sndag.DAG, a *Assignment) string {
	s := ""
	for _, sp := range d.Splits {
		alt, ok := a.Choice[sp.Orig]
		if !ok {
			if root, abs := a.AbsorbedBy[sp.Orig]; abs {
				s += fmt.Sprintf("n%d:in(n%d) ", sp.Orig.ID, root.ID)
			}
			continue
		}
		s += fmt.Sprintf("n%d:%s ", sp.Orig.ID, alt)
	}
	return s
}
