package cover

import (
	"fmt"
	"sort"

	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// ListSchedule covers a fixed functional-unit assignment with a classic
// ready-list scheduler instead of the maximal-clique covering: at every
// cycle it packs ready nodes into the instruction in priority order
// (height above the leaves, then ID), subject to resource compatibility,
// grouping legality, and register-bank pressure. Spills reuse the same
// mechanism as the clique coverer.
//
// This is the scheduling half of the sequential phase-ordered baseline
// the paper argues against: instruction selection happened before (and
// blind to) scheduling.
func ListSchedule(d *sndag.DAG, a *Assignment, opts Options) (*Solution, error) {
	g, err := buildGraph(d, a, opts)
	if err != nil {
		return nil, err
	}
	return listScheduleGraph(d, a, g, opts)
}

// listScheduleGraph runs the list scheduler on an already-built (and
// not yet mutated) solution graph, which memoListSchedule fingerprints
// first.
func listScheduleGraph(d *sndag.DAG, a *Assignment, g *graph, opts Options) (*Solution, error) {
	s := newScheduler(g, opts)

	heights := func() map[*SNode]int {
		_, bot := snodeLevels(s.g.nodes)
		return bot
	}
	h := heights()

	remaining := len(s.uncoveredNodes())
	maxStreak := 2*remaining + 8
	maxGuard := 40*remaining + 200
	guard, spillStreak := 0, 0
	for remaining > 0 {
		guard++
		if guard > maxGuard {
			return nil, fmt.Errorf("cover: list scheduler stuck with %d nodes", remaining)
		}
		var ready []*SNode
		for _, n := range s.g.nodes {
			if s.issueable(n) && s.allowedByGoal(n) {
				ready = append(ready, n)
			}
		}
		sort.Slice(ready, func(i, j int) bool {
			if h[ready[i]] != h[ready[j]] {
				return h[ready[i]] > h[ready[j]]
			}
			return ready[i].ID < ready[j].ID
		})

		// Pack useful nodes first (same anti-ping-pong gate as the clique
		// coverer: parking values early inflates pressure), then fill
		// from the rest only if nothing useful fit.
		var instr []*SNode
		pack := func(gated bool) {
			for _, n := range ready {
				if gated && !s.useful(n) {
					continue
				}
				if containsNode(instr, n) {
					continue
				}
				trial := append(append([]*SNode(nil), instr...), n)
				if !pairwiseCompatible(trial, s.g.machine) || !legalGroup(trial, s.g.machine) {
					continue
				}
				if !s.feasible(trial) {
					continue
				}
				instr = trial
			}
		}
		pack(true)
		if len(instr) == 0 {
			pack(false)
		}
		if len(instr) == 0 {
			// A NOP lets a multi-cycle result complete.
			if s.latencyPending() {
				s.schedule(nil)
				continue
			}
			spillStreak++
			if spillStreak > maxStreak {
				return nil, fmt.Errorf("cover: register files too small for list schedule")
			}
			if err := s.spill(); err != nil {
				return nil, err
			}
			h = heights()
			remaining = len(s.uncoveredNodes())
			continue
		}
		spillStreak = 0
		s.schedule(instr)
		remaining -= len(instr)
	}
	return &Solution{
		Block:        d.Block,
		Machine:      d.Machine,
		Assignment:   a,
		Instrs:       s.instrs,
		SpillCount:   s.spillCount,
		ExternalUses: g.externalUses,
	}, nil
}

func pairwiseCompatible(group []*SNode, m *isdl.Machine) bool {
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			if !resourceCompatible(group[i], group[j], m) {
				return false
			}
		}
	}
	return true
}

func containsNode(list []*SNode, x *SNode) bool {
	for _, n := range list {
		if n == x {
			return true
		}
	}
	return false
}
