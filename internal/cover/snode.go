package cover

import (
	"fmt"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// SNodeKind distinguishes the node kinds of a solution graph.
type SNodeKind uint8

// Solution-graph node kinds.
const (
	// OpNode executes a machine operation on a functional unit.
	OpNode SNodeKind = iota
	// MoveNode transfers a value between two register banks over a bus.
	MoveNode
	// LoadNode transfers a value from data memory into a register bank
	// (variable loads and spill reloads).
	LoadNode
	// StoreNode transfers a value from a register bank to data memory
	// (variable stores and spills).
	StoreNode
)

func (k SNodeKind) String() string {
	switch k {
	case OpNode:
		return "op"
	case MoveNode:
		return "move"
	case LoadNode:
		return "load"
	case StoreNode:
		return "store"
	}
	return "?"
}

// SNode is one node of the solution graph built for a functional-unit
// assignment: an operation on its assigned unit, or a data-transfer
// (move, load, store/spill). These are the nodes the maximal-clique
// grouping and the greedy covering of Sec. IV-C/IV-D operate on.
type SNode struct {
	ID   int
	Kind SNodeKind

	// Value identifies the value involved: the original IR node whose
	// result this SNode produces (ops), carries (moves/loads), or
	// consumes (stores). For synthetic pass-through copies it is the
	// store node being implemented.
	Value *ir.Node

	// Op fields.
	Unit string // executing functional unit (ops)
	Bank string // register bank the op writes (the unit's bank)
	Op   ir.Op
	Alt  *sndag.Alt // the chosen alternative (ops only)

	// Transfer fields.
	Step isdl.Transfer // the hop this transfer performs (non-op nodes)
	Var  string        // memory location name for loads/stores ("" for moves)

	// Preds/Succs are value dependences: every Succ reads the register
	// value this node defines.
	Preds []*SNode
	Succs []*SNode
	// OrdPreds/OrdSuccs are pure ordering constraints (memory access
	// ordering, spill-before-reload); no register value flows along them.
	OrdPreds []*SNode
	OrdSuccs []*SNode
}

// IsTransfer reports whether the node is a data transfer (move, load or
// store) rather than an operation.
func (n *SNode) IsTransfer() bool { return n.Kind != OpNode }

// DefLoc returns the location this node writes a value into, and whether
// it defines a register value at all (stores write memory, not a bank).
func (n *SNode) DefLoc() (isdl.Loc, bool) {
	switch n.Kind {
	case OpNode:
		return isdl.UnitLoc(n.Bank), true
	case MoveNode, LoadNode:
		return n.Step.To, true
	default:
		return isdl.Loc{}, false
	}
}

func (n *SNode) String() string {
	switch n.Kind {
	case OpNode:
		return fmt.Sprintf("s%d:%s@%s(n%d)", n.ID, n.Op, n.Unit, n.Value.ID)
	case LoadNode:
		return fmt.Sprintf("s%d:LD %s->%s(n%d)", n.ID, n.Var, n.Step.To, n.Value.ID)
	case StoreNode:
		return fmt.Sprintf("s%d:ST %s->%s(n%d)", n.ID, n.Step.From, n.Var, n.Value.ID)
	default:
		return fmt.Sprintf("s%d:MV %s->%s(n%d)", n.ID, n.Step.From, n.Step.To, n.Value.ID)
	}
}

// Link adds a value-dependence edge between externally constructed nodes
// (used by tests and the figure-reproduction harness to rebuild the
// paper's worked examples).
func Link(from, to *SNode) { addEdge(from, to) }

func addEdge(from, to *SNode) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}
