// Package cover implements the concurrent code-generation step of the
// AVIV paper (Sec. IV): covering a Split-Node DAG with a minimal-cost set
// of target-processor instructions. One call performs functional unit
// assignment, data-transfer insertion, operation grouping into VLIW
// instructions (maximal cliques of pairwise-parallel nodes), register
// bank allocation with load/spill insertion, and scheduling — all
// concurrently, as the paper argues sequential phase ordering cannot.
package cover

// Options tune the heuristics of the covering algorithm. The zero value
// is not useful; start from DefaultOptions or ExhaustiveOptions.
type Options struct {
	// BeamWidth is how many of the lowest-cost complete functional-unit
	// assignments are explored in detail (the paper's "select several
	// lowest cost assignments", Sec. IV-A).
	BeamWidth int

	// PruneIncremental enables pruning the assignment search by
	// incremental cost: at each split node only the alternatives with
	// minimal incremental cost are expanded (Fig. 6). With it disabled
	// every alternative is expanded — the paper's "heuristics off" mode.
	PruneIncremental bool

	// MaxAssignments caps the number of complete assignments enumerated,
	// a safety valve for exhaustive runs on large blocks. <=0 means no
	// cap.
	MaxAssignments int

	// LevelWindow enables the clique-reduction heuristic of Sec. IV-C.2:
	// two nodes may merge into one instruction only if their levels from
	// the top and from the bottom of the solution graph differ by at
	// most LevelWindow. <0 disables the heuristic.
	LevelWindow int

	// CliqueBudget caps how many maximal groupings one enumeration may
	// produce. On machines where one wide bus carries most transfers
	// (hub topologies), the pairwise parallelism matrix cannot express
	// the bus-capacity limit and the number of maximal cliques explodes
	// combinatorially; the budget cuts the enumeration off
	// deterministically, and a repair pass then guarantees every node
	// still appears in at least one grouping so covering cannot
	// dead-end. The cap is above what ordinary blocks generate, so it
	// only engages on pathological matrices — and on those, cost grows
	// far faster than linearly with the budget (each later clique needs
	// deeper preclusion-pruned recursion to reach), so the cap must stay
	// small to be effective. <=0 means unlimited.
	CliqueBudget int

	// Lookahead enables the tie-breaking lookahead cost of Sec. IV-D
	// when several cliques cover equally many ready nodes.
	Lookahead bool

	// TransferParallelismHeuristic selects among alternative transfer
	// paths by a parallelism-based cost (Sec. IV-B). When disabled the
	// first path is taken.
	TransferParallelismHeuristic bool

	// SpillAwareAssignment incorporates register resource limits into
	// the assignment cost function, penalizing assignments that crowd
	// more values onto a unit than its register file holds. This is the
	// extension the paper lists as ongoing work in Sec. VI ("modifying
	// the initial functional unit assignment cost function to
	// incorporate register resource limits so that it can detect
	// assignments that are likely to require spills").
	SpillAwareAssignment bool

	// VarPlacement assigns program variables to named data memories
	// (X/Y memory banking, the classic dual-MAC DSP layout). Variables
	// not listed live in the machine's first data memory. Loads from
	// different memories can ride different buses within one
	// instruction, which is the entire point.
	VarPlacement map[string]string

	// LiveOut, when non-nil, is the set of memory variables live at the
	// block's exit as computed by global dataflow analysis
	// (dataflow.Liveness). Stores whose variable is provably dead across
	// blocks are pruned before the Split-Node DAG is built, so values no
	// successor ever reads stop occupying register-bank slots and
	// generating spill traffic. nil means every variable is assumed live
	// at the block exit — the pessimistic (always safe) default.
	LiveOut map[string]bool

	// Trace, when non-nil, collects a step-by-step record of the
	// covering run (used by the figure-reproduction harness).
	Trace *Trace

	// Cache, when non-nil, is a block-level compile cache: CoverBlock
	// returns the memoized covering when the (block, machine, options)
	// content fingerprints match a previous call. Ignored while Trace is
	// set so traced runs always cover in full. Cache identity does not
	// affect output — results are byte-identical with and without it.
	Cache *Cache

	// Store, when non-nil, is a persistent second cache tier below
	// Cache (typically internal/diskcache): coverings are serialized
	// into it on a miss and deserialized from it before searching.
	// Every storage or decode failure degrades to a miss, and decoded
	// solutions are re-verified, so — like Cache — Store identity never
	// affects output. Ignored while Trace is set.
	Store EntryStore
}

// DefaultOptions returns the heuristics-on configuration used for the
// paper's main results columns.
func DefaultOptions() Options {
	return Options{
		BeamWidth:                    16,
		PruneIncremental:             true,
		MaxAssignments:               200_000,
		LevelWindow:                  3,
		CliqueBudget:                 256,
		Lookahead:                    true,
		TransferParallelismHeuristic: true,
	}
}

// ExhaustiveOptions returns the heuristics-off configuration of the
// paper's parenthesised columns: all assignments are enumerated and
// explored in detail and the clique-reduction heuristic is disabled.
// Note (as the paper does) that this still is not an exact algorithm —
// not all schedules are explored.
func ExhaustiveOptions() Options {
	return Options{
		BeamWidth:                    1 << 30,
		PruneIncremental:             false,
		MaxAssignments:               200_000,
		LevelWindow:                  -1,
		Lookahead:                    true,
		TransferParallelismHeuristic: true,
	}
}
