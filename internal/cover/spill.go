package cover

import (
	"fmt"
	"sort"

	"aviv/internal/isdl"
)

// spill frees a register in the bank that blocks the most ready nodes by
// storing one live value to data memory and reloading it before its
// remaining consumers (Sec. IV-D, Fig. 9). Data-transfer nodes made
// redundant by the spill (uncovered moves sourcing the spilled value) are
// removed and their consumers rewired to reloads.
func (s *scheduler) spill() error {
	// Collect the ready nodes blocked by register pressure.
	var blocked []*SNode
	if !DisablePooling {
		blocked = s.blockedBuf[:0]
	}
	anyReady := false
	for _, n := range s.g.nodes {
		if !s.issueable(n) {
			continue
		}
		anyReady = true
		s.single[0] = n
		if len(s.overfullBanks(s.single[:])) > 0 {
			blocked = append(blocked, n)
		}
	}
	if !DisablePooling {
		s.blockedBuf = blocked
	}
	if !anyReady {
		return fmt.Errorf("cover: no ready node and %d uncovered (dependency cycle?)", len(s.uncoveredNodes()))
	}
	if len(blocked) == 0 {
		return fmt.Errorf("cover: scheduler blocked but no bank over pressure")
	}
	// Prefer enabling operation nodes (the real work), then by ID for
	// determinism.
	sort.Slice(blocked, func(i, j int) bool {
		oi, oj := blocked[i].Kind == OpNode, blocked[j].Kind == OpNode
		if oi != oj {
			return oi
		}
		return blocked[i].ID < blocked[j].ID
	})

	for _, nb := range blocked {
		s.single[0] = nb
		// overfullBanks returns the banks sorted by name.
		for _, bo := range s.overfullBanks(s.single[:]) {
			bank := bo.bank
			victim := s.pickVictim(bank, nb)
			if victim == nil {
				continue
			}
			if err := s.spillValue(victim, bank, nb); err != nil {
				return err
			}
			s.goal, s.goalBank = nb, bank
			s.spillCount++
			if s.opts.Trace != nil {
				s.opts.Trace.logf("  spill: %s from bank %s (%d pending uses)", victim, bank, s.pending[victim.ID])
			}
			return nil
		}
	}
	return fmt.Errorf("cover: register pressure but no spillable value (bank too small for one instruction)")
}

// pickVictim selects the live value in the bank to spill. A spill keeps
// ready consumers reading the register (the store happens now, eviction
// only once they have consumed it) and rewires the rest to reloads, so a
// useful victim must have at least one distant (non-ready) consumer —
// otherwise the spill frees nothing. Following the paper's criterion the
// victim minimizes future reloads (fewest rewired consumers), ties broken
// by earliest ID. Values pinned by external uses (the branch condition)
// are not spillable.
func (s *scheduler) pickVictim(bank string, nb *SNode) *SNode {
	type score struct {
		nextUse int // uncovered work before the nearest distant consumer
		distant int // number of distant consumers (future reloads)
	}
	rate := func(p *SNode) (score, bool) {
		sc := score{nextUse: 1 << 30}
		keep := s.keptConsumer(p, nb)
		for _, u := range p.Succs {
			if s.covered[u.ID] || u == keep {
				continue
			}
			sc.distant++
			if d := s.uncoveredAncestors(u, p); d < sc.nextUse {
				sc.nextUse = d
			}
		}
		return sc, sc.distant > 0
	}
	better := func(a, b score) bool { // is a a better victim score?
		if a.nextUse != b.nextUse {
			return a.nextUse > b.nextUse // Belady: farthest next use first
		}
		return a.distant < b.distant // then fewest future reloads (paper)
	}
	var victim *SNode
	var victimScore score
	for _, p := range s.g.nodes {
		if !s.covered[p.ID] || s.removed[p.ID] || s.pending[p.ID] <= 0 {
			continue
		}
		loc, ok := p.DefLoc()
		if !ok || loc.Kind != isdl.LocUnit || loc.Name != bank {
			continue
		}
		if s.g.externalUses[p] > 0 {
			continue
		}
		sc, useful := rate(p)
		if !useful {
			continue // spilling would free nothing
		}
		if victim == nil || better(sc, victimScore) {
			victim, victimScore = p, sc
		}
	}
	return victim
}

// uncoveredAncestors counts the uncovered dependences that must execute
// before node u can run, ignoring the value arriving from `via` (the
// candidate spill victim) — an estimate of how far away u's issue slot
// is. Visited nodes are tracked with epoch stamps and the DFS stack is a
// reused scratch buffer.
func (s *scheduler) uncoveredAncestors(u, via *SNode) int {
	s.epoch++
	e := s.epoch
	s.mark[u.ID] = e
	s.mark[via.ID] = e
	cnt := 0
	var stack []*SNode
	if !DisablePooling {
		stack = s.stackBuf[:0]
	}
	stack = append(stack, u)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range x.Preds {
			if s.mark[p.ID] == e || s.covered[p.ID] || s.removed[p.ID] {
				continue
			}
			s.mark[p.ID] = e
			cnt++
			stack = append(stack, p)
		}
		for _, p := range x.OrdPreds {
			if s.mark[p.ID] == e || s.covered[p.ID] || s.removed[p.ID] {
				continue
			}
			s.mark[p.ID] = e
			cnt++
			stack = append(stack, p)
		}
	}
	if !DisablePooling {
		s.stackBuf = stack
	}
	return cnt
}

// keptConsumer returns the one uncovered ready consumer of p that keeps
// reading the register after a spill: the blocked node being enabled when
// it is itself such a consumer, otherwise the lowest-ID ready consumer.
// The kept consumer ends the register's live range at its own issue; all
// other consumers reload from the spill slot.
func (s *scheduler) keptConsumer(p, nb *SNode) *SNode {
	var keep *SNode
	for _, u := range p.Succs {
		if s.covered[u.ID] || !s.ready(u) {
			continue
		}
		if u == nb {
			return u
		}
		if keep == nil || u.ID < keep.ID {
			keep = u
		}
	}
	return keep
}

// spillValue inserts the spill store for victim's value out of bank and
// reload loads into every bank where uncovered consumers still need it.
func (s *scheduler) spillValue(victim *SNode, bank string, nb *SNode) error {
	g := s.g
	slot := fmt.Sprintf("$sp%d", g.nextSpill)
	g.nextSpill++

	// Build the spill chain bank -> DM.
	spillPath, err := g.pickPath(isdl.UnitLoc(bank), g.dm) // bank is already a bank name
	if err != nil {
		return fmt.Errorf("cover: cannot spill from %s: %w", bank, err)
	}
	cur := victim
	var spillFinal *SNode
	for i, step := range spillPath {
		var t *SNode
		if i == len(spillPath)-1 {
			t = g.newNode(StoreNode)
			t.Var = slot
		} else {
			t = g.newNode(MoveNode)
		}
		t.Value = victim.Value
		t.Step = step
		addEdge(cur, t)
		cur = t
		spillFinal = t
	}
	// The chain added nodes; extend the per-node state before indexing by
	// their IDs below.
	s.grow()

	// Collect uncovered consumers, removing redundant move chains.
	// needs maps a bank to the consumers that must be rewired to a
	// reload in that bank.
	needs := make(map[string][]*SNode)
	var walkChain func(mv *SNode)
	removeValueEdge := func(from, to *SNode) {
		from.Succs = deleteNode(from.Succs, to)
		to.Preds = deleteNode(to.Preds, from)
	}
	walkChain = func(mv *SNode) {
		// mv is an uncovered move sourcing the spilled value; its
		// consumers read the value at mv.Step.To.
		for _, w := range append([]*SNode(nil), mv.Succs...) {
			removeValueEdge(mv, w)
			if w.Kind == MoveNode && !s.covered[w.ID] {
				walkChain(w)
				continue
			}
			if mv.Step.To.Kind == isdl.LocUnit {
				needs[mv.Step.To.Name] = append(needs[mv.Step.To.Name], w)
			}
		}
		s.removed[mv.ID] = true
		s.pending[mv.ID] = pendingAbsent
		for _, q := range append([]*SNode(nil), mv.Preds...) {
			removeValueEdge(q, mv)
		}
	}

	keep := s.keptConsumer(victim, nb)
	for _, u := range append([]*SNode(nil), victim.Succs...) {
		if s.covered[u.ID] || u == spillFinal || onChainTo(u, spillFinal) {
			continue
		}
		if u == keep {
			// The kept consumer keeps reading the register: the spill's
			// store happens now but eviction waits until it has consumed
			// the value (the paper's Fig. 9 keeps the direct register
			// edge to the imminent consumer).
			continue
		}
		switch u.Kind {
		case MoveNode:
			walkChain(u)
		default:
			// Ops on this unit and stores from this bank reload into the
			// bank itself.
			removeValueEdge(victim, u)
			needs[bank] = append(needs[bank], u)
		}
	}

	// Build one reload chain per needed bank and rewire consumers.
	var bankList []string
	for b := range needs {
		bankList = append(bankList, b)
	}
	sort.Strings(bankList)
	for _, b := range bankList {
		path, err := g.pickPath(g.dm, isdl.UnitLoc(b))
		if err != nil {
			return fmt.Errorf("cover: cannot reload into %s: %w", b, err)
		}
		var cur *SNode
		for i, step := range path {
			var t *SNode
			if i == 0 {
				t = g.newNode(LoadNode)
				t.Var = slot
			} else {
				t = g.newNode(MoveNode)
			}
			t.Value = victim.Value
			t.Step = step
			if cur != nil {
				addEdge(cur, t)
			} else {
				addOrderEdge(spillFinal, t) // reload only after the spill
			}
			cur = t
		}
		for _, w := range needs[b] {
			addEdge(cur, w)
		}
	}
	// Reload chains added more nodes.
	s.grow()

	// Recompute pending for the victim and initialize it for new nodes.
	s.recomputePending(victim)
	for _, n := range g.nodes {
		if s.pending[n.ID] == pendingAbsent && !s.removed[n.ID] && !s.covered[n.ID] {
			s.initPending(n)
		}
	}
	return nil
}

// recomputePending restores the invariant pending = uncovered value
// consumers + external uses for a node after structural edits.
func (s *scheduler) recomputePending(n *SNode) {
	if _, defines := n.DefLoc(); !defines {
		return
	}
	cnt := s.g.externalUses[n]
	for _, u := range n.Succs {
		if !s.covered[u.ID] {
			cnt++
		}
	}
	s.pending[n.ID] = int32(cnt)
}

// onChainTo reports whether from is an intermediate hop of the spill
// chain ending at final (from leads to final through moves only).
func onChainTo(from, final *SNode) bool {
	for from != nil {
		if from == final {
			return true
		}
		if from.Kind != MoveNode || len(from.Succs) != 1 {
			return false
		}
		from = from.Succs[0]
	}
	return false
}

func deleteNode(list []*SNode, x *SNode) []*SNode {
	for i, n := range list {
		if n == x {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
