package cover

import (
	"encoding/binary"
	"fmt"
	"sort"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// Binary codec for cover.Result, the unit of the persistent compile
// cache. A Result is a pointer graph: the schedule's SNodes reference
// ir.Nodes of the covered block and sndag.Alt alternatives of the
// Split-Node DAG. Neither is serialized; both are re-derived on decode
// from the cache key's own components — the covered block and the
// machine are deterministic functions of (source block, machine,
// options), so sndag.Build reproduces the identical DAG and pointers
// are resolved positionally:
//
//   - ir.Node   -> by node ID within the covered block
//   - sndag.Alt -> by (ID of Covers[0], index within that split's Alts)
//
// Only the schedule itself plus the search counters are written. The
// Assignment is deliberately dropped: it is presentation-only (nothing
// downstream of covering reads it — see rebindAssignment), and edge
// lists keep their order because assembly emission matches operands to
// predecessors first-match-wins. Edges to nodes outside the schedule
// are dropped, exactly as Solution.Clone does; every consumer guards
// against them.
//
// The encoding is versioned; any structural change must bump
// codecVersion so stale disk entries decode as misses, never as wrong
// results. Integrity (truncation, bit rot) is the storage layer's job —
// decodeResult only needs to fail cleanly on garbage, which the
// bounds-checked reader plus a final Solution.Verify guarantee.
const codecVersion = 1

type encBuf struct{ b []byte }

func (e *encBuf) int(v int)     { e.b = binary.AppendVarint(e.b, int64(v)) }
func (e *encBuf) uint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encBuf) str(s string) {
	e.uint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *encBuf) loc(l isdl.Loc) {
	e.uint(uint64(l.Kind))
	e.str(l.Name)
}

type decBuf struct {
	b   []byte
	err error
}

func (d *decBuf) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decBuf) int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("cover codec: truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return int(v)
}

func (d *decBuf) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("cover codec: truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decBuf) str() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("cover codec: string length %d exceeds remaining %d bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decBuf) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) == 0 {
		d.fail("cover codec: truncated bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

func (d *decBuf) loc() isdl.Loc {
	k := d.uint()
	name := d.str()
	if d.err != nil {
		return isdl.Loc{}
	}
	if k > uint64(isdl.LocMem) {
		d.fail("cover codec: bad loc kind %d", k)
		return isdl.Loc{}
	}
	return isdl.Loc{Kind: isdl.LocKind(k), Name: name}
}

// encodeResult serializes a covering for the disk tier. It declines
// (ok=false) rather than guessing when the result is not representable:
// no best solution, no DAG, an Alt that is not resolvable positionally,
// or a scheduled node with an unscheduled value predecessor. Declining
// is always safe — the entry is simply not persisted.
func encodeResult(res *Result) (data []byte, ok bool) {
	if res == nil || res.Best == nil || res.DAG == nil {
		return nil, false
	}
	sol := res.Best
	idx := make(map[*SNode]int)
	var nodes []*SNode
	for _, instr := range sol.Instrs {
		for _, n := range instr {
			if _, dup := idx[n]; dup {
				return nil, false
			}
			idx[n] = len(nodes)
			nodes = append(nodes, n)
		}
	}

	e := &encBuf{b: make([]byte, 0, 64+len(nodes)*48)}
	e.uint(codecVersion)
	e.int(res.AssignmentsExplored)
	e.int(res.PrunedAssignments)
	e.int(res.MemoHits)
	e.int(sol.SpillCount)

	// Schedule shape: instruction count then clique sizes. Node payloads
	// follow in schedule order, so indices are implicit.
	e.int(len(sol.Instrs))
	for _, instr := range sol.Instrs {
		e.int(len(instr))
	}
	for _, n := range nodes {
		e.int(n.ID)
		e.uint(uint64(n.Kind))
		if n.Value != nil {
			e.int(n.Value.ID)
		} else {
			e.int(-1)
		}
		e.str(n.Unit)
		e.str(n.Bank)
		e.int(int(n.Op))
		if n.Alt != nil {
			root := n.Alt.Covers[0]
			split := res.DAG.SplitOf(root)
			altIdx := -1
			if split != nil {
				for i, a := range split.Alts {
					if a == n.Alt {
						altIdx = i
						break
					}
				}
			}
			if altIdx < 0 {
				return nil, false
			}
			e.int(root.ID)
			e.int(altIdx)
		} else {
			e.int(-1)
			e.int(-1)
		}
		e.loc(n.Step.From)
		e.loc(n.Step.To)
		e.str(n.Step.Bus)
		e.str(n.Var)
	}
	// Edge lists by node index, order preserved (assembly emission
	// matches operands to Preds first-match-wins). Value and ordering
	// predecessors of a scheduled node must themselves be scheduled
	// (Solution.Verify invariant); successors may escape the schedule
	// and are dropped, as in Solution.Clone.
	edges := func(list []*SNode, preds bool) bool {
		kept := 0
		for _, m := range list {
			if _, ok := idx[m]; ok {
				kept++
			} else if preds {
				return false
			}
		}
		e.int(kept)
		for _, m := range list {
			if j, ok := idx[m]; ok {
				e.int(j)
			}
		}
		return true
	}
	for _, n := range nodes {
		if !edges(n.Preds, true) || !edges(n.Succs, false) ||
			!edges(n.OrdPreds, true) || !edges(n.OrdSuccs, false) {
			return nil, false
		}
	}
	e.int(len(sol.ExternalUses))
	ext := make([]int, 0, len(sol.ExternalUses))
	extCnt := make(map[int]int, len(sol.ExternalUses))
	for n, cnt := range sol.ExternalUses {
		j, ok := idx[n]
		if !ok {
			return nil, false
		}
		ext = append(ext, j)
		extCnt[j] = cnt
	}
	sort.Ints(ext)
	for _, j := range ext {
		e.int(j)
		e.int(extCnt[j])
	}
	return e.b, true
}

// decodeResult rebuilds a covering from its serialized form against a
// freshly derived Split-Node DAG. Any inconsistency — version skew,
// truncation, out-of-range reference, or a decoded solution that fails
// Verify — returns an error, which callers treat as a cache miss.
func decodeResult(data []byte, dag *sndag.DAG) (*Result, error) {
	d := &decBuf{b: data}
	if v := d.uint(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("cover codec: version %d, want %d", v, codecVersion)
	}
	res := &Result{DAG: dag}
	res.AssignmentsExplored = d.int()
	res.PrunedAssignments = d.int()
	res.MemoHits = d.int()
	spills := d.int()

	nodeByID := make(map[int]*ir.Node, len(dag.Block.Nodes))
	for _, n := range dag.Block.Nodes {
		nodeByID[n.ID] = n
	}

	nInstrs := d.int()
	if d.err != nil {
		return nil, d.err
	}
	if nInstrs < 0 || nInstrs > len(data) {
		return nil, fmt.Errorf("cover codec: implausible instruction count %d", nInstrs)
	}
	sizes := make([]int, nInstrs)
	total := 0
	for i := range sizes {
		sizes[i] = d.int()
		if d.err != nil {
			return nil, d.err
		}
		if sizes[i] <= 0 || sizes[i] > len(data) {
			return nil, fmt.Errorf("cover codec: implausible clique size %d", sizes[i])
		}
		total += sizes[i]
	}
	if total > len(data) {
		return nil, fmt.Errorf("cover codec: %d nodes exceed payload", total)
	}
	nodes := make([]*SNode, total)
	for i := range nodes {
		nodes[i] = &SNode{}
	}
	for _, n := range nodes {
		n.ID = d.int()
		kind := d.uint()
		if d.err == nil && kind > uint64(StoreNode) {
			return nil, fmt.Errorf("cover codec: bad node kind %d", kind)
		}
		n.Kind = SNodeKind(kind)
		if vid := d.int(); vid >= 0 {
			v, ok := nodeByID[vid]
			if !ok && d.err == nil {
				return nil, fmt.Errorf("cover codec: value node %d not in block %s", vid, dag.Block.Name)
			}
			n.Value = v
		}
		n.Unit = d.str()
		n.Bank = d.str()
		n.Op = ir.Op(d.int())
		rootID := d.int()
		altIdx := d.int()
		if rootID >= 0 {
			root, ok := nodeByID[rootID]
			if !ok && d.err == nil {
				return nil, fmt.Errorf("cover codec: alt root %d not in block %s", rootID, dag.Block.Name)
			}
			split := dag.SplitOf(root)
			if split == nil || altIdx < 0 || altIdx >= len(split.Alts) {
				if d.err == nil {
					return nil, fmt.Errorf("cover codec: alt %d/%d unresolvable for node %d", rootID, altIdx, n.ID)
				}
			} else {
				n.Alt = split.Alts[altIdx]
			}
		}
		n.Step.From = d.loc()
		n.Step.To = d.loc()
		n.Step.Bus = d.str()
		n.Var = d.str()
	}
	readEdges := func() ([]*SNode, error) {
		cnt := d.int()
		if d.err != nil {
			return nil, d.err
		}
		if cnt < 0 || cnt > total {
			return nil, fmt.Errorf("cover codec: implausible edge count %d", cnt)
		}
		if cnt == 0 {
			return nil, nil
		}
		out := make([]*SNode, cnt)
		for i := range out {
			j := d.int()
			if d.err != nil {
				return nil, d.err
			}
			if j < 0 || j >= total {
				return nil, fmt.Errorf("cover codec: edge target %d out of range", j)
			}
			out[i] = nodes[j]
		}
		return out, nil
	}
	for _, n := range nodes {
		var err error
		if n.Preds, err = readEdges(); err != nil {
			return nil, err
		}
		if n.Succs, err = readEdges(); err != nil {
			return nil, err
		}
		if n.OrdPreds, err = readEdges(); err != nil {
			return nil, err
		}
		if n.OrdSuccs, err = readEdges(); err != nil {
			return nil, err
		}
	}
	nExt := d.int()
	if d.err != nil {
		return nil, d.err
	}
	if nExt < 0 || nExt > total {
		return nil, fmt.Errorf("cover codec: implausible external-use count %d", nExt)
	}
	ext := make(map[*SNode]int, nExt)
	for i := 0; i < nExt; i++ {
		j := d.int()
		cnt := d.int()
		if d.err != nil {
			return nil, d.err
		}
		if j < 0 || j >= total {
			return nil, fmt.Errorf("cover codec: external-use node %d out of range", j)
		}
		ext[nodes[j]] = cnt
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("cover codec: %d trailing bytes", len(d.b))
	}

	sol := &Solution{
		Block:        dag.Block,
		Machine:      dag.Machine,
		Instrs:       make([][]*SNode, nInstrs),
		SpillCount:   spills,
		ExternalUses: ext,
	}
	at := 0
	for i, sz := range sizes {
		sol.Instrs[i] = nodes[at : at+sz : at+sz]
		at += sz
	}
	// Defense in depth: a decoded schedule must satisfy the same
	// invariants a fresh covering does before it may reach emission.
	if err := sol.Verify(); err != nil {
		return nil, fmt.Errorf("cover codec: decoded solution invalid: %w", err)
	}
	res.Best = sol
	return res, nil
}
