package cover

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"

	"aviv/internal/bitset"
	"aviv/internal/isdl"
)

// parallelMatrix computes the pairwise-parallelism matrix of Sec. IV-C.1
// over the given solution-graph nodes as word-packed bitset rows: bit
// (i, j) is set when node i can execute in the same instruction as node
// j. Two nodes are parallel when no directed path connects them (value
// or ordering edges) and their resources are compatible: two operations
// need different units; two transfers must not both need a slot on a
// width-1 bus. Wider buses and explicit ISDL constraints are enforced
// later by legality splitting.
//
// levelWindow >= 0 additionally applies the clique-reduction heuristic of
// Sec. IV-C.2: nodes merge only when their levels from the top and from
// the bottom of the solution graph are within the window.
func parallelMatrix(nodes []*SNode, m *isdl.Machine, levelWindow int) *bitset.Matrix {
	n := len(nodes)
	idx := make(map[*SNode]int, n)
	for i, nd := range nodes {
		idx[nd] = i
	}
	// Transitive reachability restricted to the node subset. Paths may
	// pass through nodes outside the subset (already covered ones cannot
	// — they are scheduled — but spill regeneration passes subsets), so
	// walk the full graph.
	reach := bitset.NewMatrix(n)
	seen := make(map[*SNode]bool, 2*n)
	var stack []*SNode
	for i, nd := range nodes {
		clear(seen)
		stack = append(stack[:0], nd.Succs...)
		stack = append(stack, nd.OrdSuccs...)
		row := reach.Row(i)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] {
				continue
			}
			seen[x] = true
			if j, ok := idx[x]; ok {
				row.Set(j)
			}
			stack = append(stack, x.Succs...)
			stack = append(stack, x.OrdSuccs...)
		}
	}

	var fromTop, fromBottom map[*SNode]int
	if levelWindow >= 0 {
		fromTop, fromBottom = snodeLevels(nodes)
	}

	par := bitset.NewMatrix(n)
	for i := 0; i < n; i++ {
		ri := reach.Row(i)
		for j := i + 1; j < n; j++ {
			ok := !ri.Get(j) && !reach.Get(j, i) && resourceCompatible(nodes[i], nodes[j], m)
			if ok && levelWindow >= 0 {
				a, b := nodes[i], nodes[j]
				if abs(fromTop[a]-fromTop[b]) > levelWindow || abs(fromBottom[a]-fromBottom[b]) > levelWindow {
					ok = false
				}
			}
			if ok {
				par.SetSym(i, j)
			}
		}
	}
	return par
}

// ParallelMatrix is the [][]bool view of parallelMatrix, kept for the
// figure-reproduction harness and tests that index entries directly.
func ParallelMatrix(nodes []*SNode, m *isdl.Machine, levelWindow int) [][]bool {
	pm := parallelMatrix(nodes, m, levelWindow)
	n := len(nodes)
	par := make([][]bool, n)
	for i := range par {
		par[i] = make([]bool, n)
		row := pm.Row(i)
		for j := 0; j < n; j++ {
			par[i][j] = row.Get(j)
		}
	}
	return par
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func resourceCompatible(a, b *SNode, m *isdl.Machine) bool {
	if a.Kind == OpNode && b.Kind == OpNode {
		return a.Unit != b.Unit
	}
	if a.IsTransfer() && b.IsTransfer() {
		if a.Step.Bus == b.Step.Bus {
			bus := m.Bus(a.Step.Bus)
			if bus != nil && bus.Width == 1 {
				return false
			}
		}
	}
	return true
}

// snodeLevels computes levels from the top (distance below a sink) and
// from the bottom (height above a source) within the node subset,
// following both value and ordering edges.
func snodeLevels(nodes []*SNode) (fromTop, fromBottom map[*SNode]int) {
	inSet := make(map[*SNode]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	order := topoOrder(nodes, inSet)
	fromBottom = make(map[*SNode]int, len(nodes))
	for _, n := range order {
		h := 0
		for _, p := range n.Preds {
			if inSet[p] {
				if v := fromBottom[p] + 1; v > h {
					h = v
				}
			}
		}
		for _, p := range n.OrdPreds {
			if inSet[p] {
				if v := fromBottom[p] + 1; v > h {
					h = v
				}
			}
		}
		fromBottom[n] = h
	}
	fromTop = make(map[*SNode]int, len(nodes))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		d := 0
		for _, s := range n.Succs {
			if inSet[s] {
				if v := fromTop[s] + 1; v > d {
					d = v
				}
			}
		}
		for _, s := range n.OrdSuccs {
			if inSet[s] {
				if v := fromTop[s] + 1; v > d {
					d = v
				}
			}
		}
		fromTop[n] = d
	}
	return fromTop, fromBottom
}

func topoOrder(nodes []*SNode, inSet map[*SNode]bool) []*SNode {
	var order []*SNode
	state := make(map[*SNode]int, len(nodes)) // 0 unseen, 1 visiting, 2 done
	var visit func(n *SNode)
	visit = func(n *SNode) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, p := range n.Preds {
			if inSet[p] {
				visit(p)
			}
		}
		for _, p := range n.OrdPreds {
			if inSet[p] {
				visit(p)
			}
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, n := range nodes {
		visit(n)
	}
	return order
}

// cliqueGen holds the working state of one GenMaxCliquesBits run: the
// matrix, the accumulated cliques with their dedupe keys, a scratch word
// buffer for binary keys, and a free list of recursion-frame sets.
type cliqueGen struct {
	pm     *bitset.Matrix
	out    [][]int
	seen   map[string]bool
	keyBuf []byte
	tmp    bitset.Set
	free   []bitset.Set
	// budget caps the number of recorded cliques (0 = unlimited); full
	// is latched once the budget is reached and aborts the recursion.
	budget int
	full   bool
}

func (g *cliqueGen) get() bitset.Set {
	if n := len(g.free); n > 0 {
		s := g.free[n-1]
		g.free = g.free[:n-1]
		s.Reset()
		return s
	}
	return bitset.New(g.pm.N())
}

func (g *cliqueGen) put(s bitset.Set) { g.free = append(g.free, s) }

func (g *cliqueGen) record(clique bitset.Set) {
	g.keyBuf = g.keyBuf[:0]
	for _, w := range clique {
		g.keyBuf = binary.LittleEndian.AppendUint64(g.keyBuf, w)
	}
	if g.seen[string(g.keyBuf)] {
		return
	}
	g.seen[string(g.keyBuf)] = true
	g.out = append(g.out, clique.AppendBits(nil))
	if g.budget > 0 && len(g.out) >= g.budget {
		g.full = true
	}
}

// gen is the recursive core of Fig. 8. clique holds the members so far;
// cand holds exactly the nodes parallel to every member (the AND of the
// members' matrix rows); index is the preclusion threshold. clique is
// mutated by absorption, so callers pass a private copy.
func (g *cliqueGen) gen(clique, cand bitset.Set, index int) {
	if g.full {
		return
	}
	// First loop: absorb candidates that preclude no other candidate. A
	// candidate i is universal when cand \ row(i) contains nothing but i
	// itself — a word-wise ANDNOT instead of a pairwise scan.
	var rest []int
	precluded := false
	cand.ForEach(func(i int) {
		if precluded {
			return
		}
		g.tmp.AndNot(cand, g.pm.Row(i))
		g.tmp.Clear(i)
		if g.tmp.Empty() {
			if i < index {
				precluded = true // pruning condition of Fig. 8
				return
			}
			clique.Set(i)
		} else {
			rest = append(rest, i)
		}
	})
	if precluded {
		return
	}
	if len(rest) == 0 {
		g.record(clique)
		return
	}
	// An absorbed universal candidate is parallel to every other
	// candidate, so its row contains all of cand but itself: removing
	// the clique bits leaves exactly the candidate set the recursive
	// calls must see.
	candRest := g.get()
	candRest.AndNot(cand, clique)
	childClique := g.get()
	childCand := g.get()
	// Second loop: spawn one recursive call per remaining candidate.
	for _, i := range rest {
		if g.full {
			break
		}
		childClique.Copy(clique)
		childClique.Set(i)
		childCand.And(candRest, g.pm.Row(i))
		next := index
		if i > next {
			next = i
		}
		g.gen(childClique, childCand, next)
	}
	g.put(childCand)
	g.put(childClique)
	g.put(candRest)
}

// GenMaxCliquesBits enumerates all maximal cliques of the bitset
// parallelism matrix using the paper's Fig. 8 algorithm: the first phase
// greedily absorbs every candidate that precludes no other candidate,
// and the i < index test prunes branches whose cliques were already
// produced from an earlier-numbered seed. Candidate intersection,
// absorption, and the preclusion test are word-wise AND/ANDNOT over the
// packed rows. Cliques are returned as sorted index slices, largest
// first.
func GenMaxCliquesBits(pm *bitset.Matrix) [][]int {
	return GenMaxCliquesLimit(pm, 0)
}

// GenMaxCliquesLimit is GenMaxCliquesBits with a budget: enumeration
// stops deterministically once budget cliques are recorded (0 means
// unlimited), and a repair pass then extends the result with one
// greedily-built maximal clique per node the truncated enumeration left
// uncovered, so downstream covering always finds a grouping for every
// node.
func GenMaxCliquesLimit(pm *bitset.Matrix, budget int) [][]int {
	n := pm.N()
	g := &cliqueGen{
		pm:     pm,
		seen:   make(map[string]bool),
		tmp:    bitset.New(n),
		budget: budget,
	}
	seedClique := bitset.New(n)
	seedCand := bitset.New(n)
	for i := 0; i < n && !g.full; i++ {
		seedClique.Reset()
		seedClique.Set(i)
		seedCand.Copy(pm.Row(i))
		g.gen(seedClique, seedCand, i)
	}
	if g.full {
		g.repairCoverage()
	}
	out := g.out
	keys := make([]string, len(out))
	for i, c := range out {
		keys[i] = intsKey(c)
	}
	sort.Sort(&cliqueSort{cliques: out, keys: keys})
	return out
}

// repairCoverage runs after a budget-truncated enumeration: any node no
// recorded clique contains gets one maximal clique built greedily
// around it (always absorbing the lowest-index remaining candidate), so
// the truncation can never make a node unschedulable.
func (g *cliqueGen) repairCoverage() {
	n := g.pm.N()
	covered := bitset.New(n)
	for _, c := range g.out {
		for _, i := range c {
			covered.Set(i)
		}
	}
	clique := bitset.New(n)
	cand := bitset.New(n)
	for i := 0; i < n; i++ {
		if covered.Get(i) {
			continue
		}
		clique.Reset()
		clique.Set(i)
		cand.Copy(g.pm.Row(i))
		for {
			j := -1
			cand.ForEach(func(k int) {
				if j < 0 {
					j = k
				}
			})
			if j < 0 {
				break
			}
			clique.Set(j)
			cand.And(cand, g.pm.Row(j))
			cand.Clear(j)
		}
		g.record(clique)
		clique.ForEach(func(k int) { covered.Set(k) })
	}
}

// GenMaxCliques is GenMaxCliquesBits over a [][]bool matrix, kept for
// the figure-reproduction harness and tests.
func GenMaxCliques(par [][]bool) [][]int {
	n := len(par)
	pm := bitset.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if par[i][j] {
				pm.Row(i).Set(j)
			}
		}
	}
	return GenMaxCliquesBits(pm)
}

// cliqueSort orders cliques largest first, ties broken by the textual
// index list (the historical fmt.Sprint order, which downstream
// tie-breaking depends on for byte-identical output).
type cliqueSort struct {
	cliques [][]int
	keys    []string
}

func (s *cliqueSort) Len() int { return len(s.cliques) }
func (s *cliqueSort) Less(a, b int) bool {
	if len(s.cliques[a]) != len(s.cliques[b]) {
		return len(s.cliques[a]) > len(s.cliques[b])
	}
	return s.keys[a] < s.keys[b]
}
func (s *cliqueSort) Swap(a, b int) {
	s.cliques[a], s.cliques[b] = s.cliques[b], s.cliques[a]
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
}

// intsKey renders a sorted index slice exactly as fmt.Sprint would
// ("[1 2 3]") without the reflection cost.
func intsKey(c []int) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, v := range c {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	sb.WriteByte(']')
	return sb.String()
}

// buildCliques generates the legal maximal groupings over the given nodes:
// the parallelism matrix, the maximal cliques, then legality splitting of
// any clique that violates machine constraints (Sec. IV-C.3).
func buildCliques(nodes []*SNode, m *isdl.Machine, opts Options) [][]*SNode {
	if len(nodes) == 0 {
		return nil
	}
	return cliquesFromMatrix(nodes, parallelMatrix(nodes, m, opts.LevelWindow), m, opts.CliqueBudget)
}

// cliquesFromMatrix is buildCliques from a precomputed parallelism
// matrix; cliqueCover computes the matrix itself so it can also serve as
// the memo key.
func cliquesFromMatrix(nodes []*SNode, par *bitset.Matrix, m *isdl.Machine, budget int) [][]*SNode {
	raw := GenMaxCliquesLimit(par, budget)
	var out [][]*SNode
	for _, idxs := range raw {
		group := make([]*SNode, len(idxs))
		for i, j := range idxs {
			group[i] = nodes[j]
		}
		out = append(out, splitIllegal(group, m)...)
	}
	return dedupeCliques(out)
}

// splitIllegal checks a proposed grouping against the machine's
// constraints, splitting it greedily into legal subgroups when violated.
func splitIllegal(group []*SNode, m *isdl.Machine) [][]*SNode {
	if legalGroup(group, m) {
		return [][]*SNode{group}
	}
	var subs [][]*SNode
	for _, n := range group {
		placed := false
		for i := range subs {
			trial := append(append([]*SNode(nil), subs[i]...), n)
			if legalGroup(trial, m) {
				subs[i] = trial
				placed = true
				break
			}
		}
		if !placed {
			subs = append(subs, []*SNode{n})
		}
	}
	return subs
}

// legalGroup reports whether the grouping forms a legal instruction.
func legalGroup(group []*SNode, m *isdl.Machine) bool {
	var slots []isdl.SlotRef
	busUse := make(map[string]int)
	for _, n := range group {
		if n.Kind == OpNode {
			// Synthetic immediate materializations (Op == CONST) occupy
			// the unit but are outside the ISDL op repertoire; unit
			// exclusivity for them is already enforced by the
			// parallelism matrix, so they add no constraint slot.
			if n.Op.IsComputation() {
				slots = append(slots, isdl.SlotRef{Unit: n.Unit, Op: n.Op})
			}
		} else {
			busUse[n.Step.Bus]++
		}
	}
	return m.CheckGroup(slots, busUse) == nil
}

// dedupeCliques removes duplicate groupings by a binary key over the
// sorted node IDs (a hash-set lookup per clique; formatting-free).
func dedupeCliques(cs [][]*SNode) [][]*SNode {
	seen := make(map[string]bool, len(cs))
	var out [][]*SNode
	var ids []int
	var key []byte
	for _, c := range cs {
		k := cliqueKey(c, &ids, &key)
		if !seen[string(k)] {
			seen[string(k)] = true
			out = append(out, c)
		}
	}
	return out
}

// cliqueKey builds the canonical binary key of a clique (varints of the
// sorted node IDs) in the caller-provided scratch buffers, growing them
// as needed.
func cliqueKey(c []*SNode, ids *[]int, key *[]byte) []byte {
	v := (*ids)[:0]
	for _, n := range c {
		v = append(v, n.ID)
	}
	sort.Ints(v)
	*ids = v
	k := (*key)[:0]
	for _, id := range v {
		k = binary.AppendVarint(k, int64(id))
	}
	*key = k
	return k
}

// formatClique renders a clique for traces and tests.
func formatClique(c []*SNode) string {
	parts := make([]string, len(c))
	for i, n := range c {
		parts[i] = n.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
