package cover

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/isdl"
)

// ParallelMatrix computes the pairwise-parallelism matrix of Sec. IV-C.1
// over the given solution-graph nodes: entry [i][j] is true when node i
// can execute in the same instruction as node j. Two nodes are parallel
// when no directed path connects them (value or ordering edges) and their
// resources are compatible: two operations need different units; two
// transfers must not both need a slot on a width-1 bus. Wider buses and
// explicit ISDL constraints are enforced later by legality splitting.
//
// levelWindow >= 0 additionally applies the clique-reduction heuristic of
// Sec. IV-C.2: nodes merge only when their levels from the top and from
// the bottom of the solution graph are within the window.
func ParallelMatrix(nodes []*SNode, m *isdl.Machine, levelWindow int) [][]bool {
	n := len(nodes)
	idx := make(map[*SNode]int, n)
	for i, nd := range nodes {
		idx[nd] = i
	}
	// Transitive reachability restricted to the node subset. Paths may
	// pass through nodes outside the subset (already covered ones cannot
	// — they are scheduled — but spill regeneration passes subsets), so
	// walk the full graph.
	reach := make([][]bool, n)
	for i, nd := range nodes {
		reach[i] = make([]bool, n)
		seen := make(map[*SNode]bool)
		stack := append([]*SNode{}, nd.Succs...)
		stack = append(stack, nd.OrdSuccs...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] {
				continue
			}
			seen[x] = true
			if j, ok := idx[x]; ok {
				reach[i][j] = true
			}
			stack = append(stack, x.Succs...)
			stack = append(stack, x.OrdSuccs...)
		}
	}

	var fromTop, fromBottom map[*SNode]int
	if levelWindow >= 0 {
		fromTop, fromBottom = snodeLevels(nodes)
	}

	par := make([][]bool, n)
	for i := range par {
		par[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ok := !reach[i][j] && !reach[j][i] && resourceCompatible(nodes[i], nodes[j], m)
			if ok && levelWindow >= 0 {
				a, b := nodes[i], nodes[j]
				if abs(fromTop[a]-fromTop[b]) > levelWindow || abs(fromBottom[a]-fromBottom[b]) > levelWindow {
					ok = false
				}
			}
			par[i][j] = ok
			par[j][i] = ok
		}
	}
	return par
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func resourceCompatible(a, b *SNode, m *isdl.Machine) bool {
	if a.Kind == OpNode && b.Kind == OpNode {
		return a.Unit != b.Unit
	}
	if a.IsTransfer() && b.IsTransfer() {
		if a.Step.Bus == b.Step.Bus {
			bus := m.Bus(a.Step.Bus)
			if bus != nil && bus.Width == 1 {
				return false
			}
		}
	}
	return true
}

// snodeLevels computes levels from the top (distance below a sink) and
// from the bottom (height above a source) within the node subset,
// following both value and ordering edges.
func snodeLevels(nodes []*SNode) (fromTop, fromBottom map[*SNode]int) {
	inSet := make(map[*SNode]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	order := topoOrder(nodes, inSet)
	fromBottom = make(map[*SNode]int, len(nodes))
	for _, n := range order {
		h := 0
		for _, p := range append(append([]*SNode{}, n.Preds...), n.OrdPreds...) {
			if inSet[p] {
				if v := fromBottom[p] + 1; v > h {
					h = v
				}
			}
		}
		fromBottom[n] = h
	}
	fromTop = make(map[*SNode]int, len(nodes))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		d := 0
		for _, s := range append(append([]*SNode{}, n.Succs...), n.OrdSuccs...) {
			if inSet[s] {
				if v := fromTop[s] + 1; v > d {
					d = v
				}
			}
		}
		fromTop[n] = d
	}
	return fromTop, fromBottom
}

func topoOrder(nodes []*SNode, inSet map[*SNode]bool) []*SNode {
	var order []*SNode
	state := make(map[*SNode]int, len(nodes)) // 0 unseen, 1 visiting, 2 done
	var visit func(n *SNode)
	visit = func(n *SNode) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, p := range n.Preds {
			if inSet[p] {
				visit(p)
			}
		}
		for _, p := range n.OrdPreds {
			if inSet[p] {
				visit(p)
			}
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, n := range nodes {
		visit(n)
	}
	return order
}

// GenMaxCliques enumerates all maximal cliques of the parallelism matrix
// using the paper's Fig. 8 algorithm. The first phase greedily absorbs
// every candidate that precludes no other candidate; the i < index test
// prunes branches whose cliques were already produced from an
// earlier-numbered seed. Cliques are returned as sorted index slices.
func GenMaxCliques(par [][]bool) [][]int {
	n := len(par)
	var out [][]int
	seen := make(map[string]bool)

	record := func(clique []int) {
		c := append([]int(nil), clique...)
		sort.Ints(c)
		key := fmt.Sprint(c)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}

	parAll := func(i int, clique []int) bool {
		for _, j := range clique {
			if !par[i][j] {
				return false
			}
		}
		return true
	}

	var gen func(clique []int, index int)
	gen = func(clique []int, index int) {
		// Candidates: nodes parallel with every clique member.
		var cand []int
		for i := 0; i < n; i++ {
			if parAll(i, clique) && !contains(clique, i) {
				cand = append(cand, i)
			}
		}
		// First loop: absorb candidates that preclude no other candidate.
		var rest []int
		for ci, i := range cand {
			universal := true
			for cj, j := range cand {
				if ci != cj && !par[i][j] {
					universal = false
					break
				}
			}
			if universal {
				if i < index {
					return // pruning condition of Fig. 8
				}
				clique = append(clique, i)
			} else {
				rest = append(rest, i)
			}
		}
		if len(rest) == 0 {
			record(clique)
			return
		}
		// Second loop: spawn one recursive call per remaining candidate.
		for _, i := range rest {
			next := index
			if i > next {
				next = i
			}
			gen(append(append([]int(nil), clique...), i), next)
		}
	}

	for i := 0; i < n; i++ {
		gen([]int{i}, i)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return fmt.Sprint(out[a]) < fmt.Sprint(out[b])
	})
	return out
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// buildCliques generates the legal maximal groupings over the given nodes:
// the parallelism matrix, the maximal cliques, then legality splitting of
// any clique that violates machine constraints (Sec. IV-C.3).
func buildCliques(nodes []*SNode, m *isdl.Machine, opts Options) [][]*SNode {
	if len(nodes) == 0 {
		return nil
	}
	par := ParallelMatrix(nodes, m, opts.LevelWindow)
	raw := GenMaxCliques(par)
	var out [][]*SNode
	for _, idxs := range raw {
		group := make([]*SNode, len(idxs))
		for i, j := range idxs {
			group[i] = nodes[j]
		}
		out = append(out, splitIllegal(group, m)...)
	}
	return dedupeCliques(out)
}

// splitIllegal checks a proposed grouping against the machine's
// constraints, splitting it greedily into legal subgroups when violated.
func splitIllegal(group []*SNode, m *isdl.Machine) [][]*SNode {
	if legalGroup(group, m) {
		return [][]*SNode{group}
	}
	var subs [][]*SNode
	for _, n := range group {
		placed := false
		for i := range subs {
			trial := append(append([]*SNode(nil), subs[i]...), n)
			if legalGroup(trial, m) {
				subs[i] = trial
				placed = true
				break
			}
		}
		if !placed {
			subs = append(subs, []*SNode{n})
		}
	}
	return subs
}

// legalGroup reports whether the grouping forms a legal instruction.
func legalGroup(group []*SNode, m *isdl.Machine) bool {
	var slots []isdl.SlotRef
	busUse := make(map[string]int)
	for _, n := range group {
		if n.Kind == OpNode {
			// Synthetic immediate materializations (Op == CONST) occupy
			// the unit but are outside the ISDL op repertoire; unit
			// exclusivity for them is already enforced by the
			// parallelism matrix, so they add no constraint slot.
			if n.Op.IsComputation() {
				slots = append(slots, isdl.SlotRef{Unit: n.Unit, Op: n.Op})
			}
		} else {
			busUse[n.Step.Bus]++
		}
	}
	return m.CheckGroup(slots, busUse) == nil
}

func dedupeCliques(cs [][]*SNode) [][]*SNode {
	seen := make(map[string]bool, len(cs))
	var out [][]*SNode
	for _, c := range cs {
		ids := make([]int, len(c))
		for i, n := range c {
			ids[i] = n.ID
		}
		sort.Ints(ids)
		key := fmt.Sprint(ids)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	return out
}

// formatClique renders a clique for traces and tests.
func formatClique(c []*SNode) string {
	parts := make([]string, len(c))
	for i, n := range c {
		parts[i] = n.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
