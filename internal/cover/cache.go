package cover

import (
	"container/list"
	"crypto/sha256"
	"sort"
	"sync"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// EntryStore is a persistent second cache tier below Cache: a
// byte-oriented content-addressed store (implemented by
// internal/diskcache) keyed by the same fingerprints. CoverBlock
// serializes coverings into it and treats every failure — absent key,
// truncated or corrupted entry, version skew — as a miss, so a store
// can never change compiled output, only skip recomputation.
type EntryStore interface {
	// Get returns the stored entry for key, or ok=false on any miss.
	Get(key [sha256.Size]byte) ([]byte, bool)
	// Put persists an entry. Best-effort: errors are swallowed by the
	// implementation (a failed write is just a future miss).
	Put(key [sha256.Size]byte, data []byte)
}

// Cache is a block-level compile cache for the covering engine, safe
// for concurrent use by the compile worker pool. Keys are pure content
// fingerprints — (IR block, machine description, covering options) — so
// a hit is only possible when covering would deterministically recompute
// the exact same result; cached results are returned as shallow copies
// and never mutated downstream (the peephole pass clones before
// editing, and register allocation, emission, and verification only
// read the solution).
//
// The cache stores cover.Result (the pre-peephole covering), not
// emitted code: block layout mutates emitted branches per program, so
// caching any later artifact would not be reuse-safe.
//
// Capacity is bounded (NewBoundedCache): entries are evicted least
// recently used first, so a long-running server's memory stays
// proportional to its working set, not its history.
type Cache struct {
	mu         sync.Mutex
	entries    map[cacheKey]*list.Element
	order      *list.List // front = most recently used
	maxEntries int        // <=0: unbounded
	machFPs    map[*isdl.Machine][sha256.Size]byte
	hits       int64
	misses     int64
	bytes      int64
	evictions  int64
}

type cacheEntry struct {
	key cacheKey
	res *Result
}

type cacheKey struct {
	block   [sha256.Size]byte
	machine [sha256.Size]byte
	options [sha256.Size]byte
}

// storeKey collapses the three content fingerprints into the single
// address used by the persistent tier.
func (k cacheKey) storeKey() [sha256.Size]byte {
	h := sha256.New()
	h.Write(k.block[:])
	h.Write(k.machine[:])
	h.Write(k.options[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries int
	Hits    int64
	Misses  int64
	// Evictions counts entries dropped to respect the entry cap.
	Evictions int64
	// Bytes estimates the memory retained by cached solutions.
	Bytes int64
}

// HitRate returns hits / lookups, or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewCache returns an empty, unbounded compile cache. Share one across
// Compile calls to reuse coverings of unchanged blocks.
func NewCache() *Cache {
	return NewBoundedCache(0)
}

// NewBoundedCache returns a compile cache holding at most maxEntries
// coverings, evicting least recently used first. maxEntries <= 0 means
// unbounded.
func NewBoundedCache(maxEntries int) *Cache {
	return &Cache{
		entries:    make(map[cacheKey]*list.Element),
		order:      list.New(),
		maxEntries: maxEntries,
		machFPs:    make(map[*isdl.Machine][sha256.Size]byte),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
	}
}

// key builds the content key for one covering request. The machine
// fingerprint (a Describe render plus hash) is memoized per machine
// pointer.
func (c *Cache) key(block *ir.Block, m *isdl.Machine, opts Options) cacheKey {
	c.mu.Lock()
	mfp, ok := c.machFPs[m]
	c.mu.Unlock()
	if !ok {
		mfp = m.Fingerprint()
		c.mu.Lock()
		c.machFPs[m] = mfp
		c.mu.Unlock()
	}
	return cacheKey{block: block.Fingerprint(), machine: mfp, options: optionsFingerprint(opts)}
}

// computeKey is Cache.key without the memoization, for callers that run
// with a persistent store but no in-memory tier.
func computeKey(block *ir.Block, m *isdl.Machine, opts Options) cacheKey {
	return cacheKey{block: block.Fingerprint(), machine: m.Fingerprint(), options: optionsFingerprint(opts)}
}

func (c *Cache) get(key cacheKey) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *Cache) put(key cacheKey, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	c.bytes += approxResultBytes(res)
	for c.maxEntries > 0 && len(c.entries) > c.maxEntries {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.entries, ent.key)
		c.bytes -= approxResultBytes(ent.res)
		c.evictions++
	}
}

// approxResultBytes estimates the retained size of a cached covering:
// the dominant costs are the solution-graph nodes reachable from the
// schedule and the Split-Node DAG. It is an accounting estimate for
// stats output, not an allocator measurement.
func approxResultBytes(res *Result) int64 {
	const (
		nodeSize  = 200 // SNode + edge slices
		sliceSize = 24
	)
	n := int64(0)
	if res.Best != nil {
		for _, instr := range res.Best.Instrs {
			n += sliceSize + int64(len(instr))*nodeSize
		}
	}
	if res.DAG != nil {
		n += int64(res.DAG.Counts.Total()) * nodeSize
	}
	return n + 256
}

// optionsFingerprint hashes every Options field that influences the
// covering result. Trace is excluded (the cache is bypassed when
// tracing) and Cache/Store are excluded (they have no effect on
// output).
func optionsFingerprint(o Options) [sha256.Size]byte {
	w := &fpWriter{h: sha256.New()}
	w.int(o.BeamWidth)
	w.bool(o.PruneIncremental)
	w.int(o.MaxAssignments)
	w.int(o.LevelWindow)
	w.int(o.CliqueBudget)
	w.bool(o.Lookahead)
	w.bool(o.TransferParallelismHeuristic)
	w.bool(o.SpillAwareAssignment)
	w.int(len(o.VarPlacement))
	for _, k := range sortedKeys(o.VarPlacement) {
		w.str(k)
		w.str(o.VarPlacement[k])
	}
	if o.LiveOut == nil {
		// nil disables store pruning entirely; an empty set prunes
		// aggressively. The two must not collide.
		w.int(-1)
	} else {
		live := make([]string, 0, len(o.LiveOut))
		for v, ok := range o.LiveOut {
			if ok {
				live = append(live, v)
			}
		}
		sort.Strings(live)
		w.int(len(live))
		for _, v := range live {
			w.str(v)
		}
	}
	w.flush()
	var sum [sha256.Size]byte
	w.h.Sum(sum[:0])
	return sum
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
