package baseline

import (
	"fmt"
	"testing"

	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

func TestDebugEx5(t *testing.T) {
	w := bench.Ex5()
	m := isdl.ExampleArch(2)
	d, _ := sndag.Build(w.Block, m)
	a := SelectUnits(d)
	for n, alt := range a.Choice {
		fmt.Printf("n%d:%s -> %s\n", n.ID, n.Op, alt)
	}
	opts := cover.DefaultOptions()
	tr := &cover.Trace{}
	opts.Trace = tr
	_, err := cover.ListSchedule(d, a, opts)
	lines := tr.Lines
	if len(lines) > 60 {
		lines = lines[:30]
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Println("err:", err)
}
