package baseline

import "aviv/internal/ir"

// Interpret executes f directly on the IR-level semantics, mutating mem
// in place and returning it. It is the reference oracle of the
// differential test harness: any compiled program — from this package's
// sequential phase-ordered generator or from the concurrent AVIV
// pipeline — must leave data memory in exactly this state when run on
// the instruction-level simulator. maxSteps bounds execution (<= 0
// selects the interpreter's default budget) so malformed control flow
// cannot loop forever.
func Interpret(f *ir.Func, mem map[string]int64, maxSteps int) (map[string]int64, error) {
	if mem == nil {
		mem = map[string]int64{}
	}
	if err := ir.EvalFunc(f, mem, maxSteps); err != nil {
		return nil, err
	}
	return mem, nil
}
