package baseline

import (
	"testing"

	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

func TestBaselineProducesValidSolutions(t *testing.T) {
	for _, w := range bench.PaperWorkloads() {
		for _, regs := range []int{2, 4} {
			m := isdl.ExampleArch(regs)
			sol, err := Compile(w.Block, m)
			if err != nil {
				t.Fatalf("%s regs=%d: %v", w.Name, regs, err)
			}
			if err := sol.Verify(); err != nil {
				t.Fatalf("%s regs=%d invalid: %v\n%s", w.Name, regs, err, sol)
			}
		}
	}
}

func TestConcurrentNeverLosesToBaseline(t *testing.T) {
	// The paper's thesis: concurrent selection/scheduling beats (or
	// equals) phase-ordered compilation. Allow one instruction of noise.
	worse := 0
	total := 0
	for _, w := range bench.PaperWorkloads() {
		m := isdl.ExampleArch(4)
		base, err := Compile(w.Block, m)
		if err != nil {
			t.Fatal(err)
		}
		conc, err := cover.CoverBlock(w.Block, m, cover.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		total++
		if conc.Best.Cost() > base.Cost() {
			worse++
			t.Logf("%s: concurrent %d vs baseline %d", w.Name, conc.Best.Cost(), base.Cost())
		}
		if conc.Best.Cost() > base.Cost()+1 {
			t.Errorf("%s: concurrent %d clearly worse than baseline %d",
				w.Name, conc.Best.Cost(), base.Cost())
		}
	}
	if worse == total {
		t.Errorf("concurrent covering lost to the baseline on every block")
	}
}

func TestSelectUnitsBalances(t *testing.T) {
	w := bench.VectorAdd(6)
	m := isdl.ExampleArch(4)
	d, err := sndagBuild(w, m)
	if err != nil {
		t.Fatal(err)
	}
	a := SelectUnits(d)
	perUnit := map[string]int{}
	for _, alt := range a.Choice {
		perUnit[alt.Unit.Name]++
	}
	// Six independent ADDs over three capable units: perfectly balanced.
	for u, n := range perUnit {
		if n != 2 {
			t.Errorf("unit %s got %d ops, want 2 (balanced)", u, n)
		}
	}
}

func sndagBuild(w bench.Workload, m *isdl.Machine) (*sndag.DAG, error) {
	return sndag.Build(w.Block, m)
}

func TestSelectUnitsPrefersComplexMatches(t *testing.T) {
	// Longest-match-first: the MAC alternative absorbs ADD+MUL.
	bb := ir.NewBuilder("mac")
	acc := bb.Load("acc")
	bb.Store("acc", bb.Add(acc, bb.Mul(bb.Load("x"), bb.Load("y"))))
	bb.Return()
	m := isdl.WideDSP(8)
	d, err := sndag.Build(bb.Finish(), m)
	if err != nil {
		t.Fatal(err)
	}
	a := SelectUnits(d)
	usedMAC := false
	for _, alt := range a.Choice {
		if alt.Op == ir.OpMAC {
			usedMAC = true
			if len(alt.Covers) != 2 {
				t.Errorf("MAC covers %d nodes, want 2", len(alt.Covers))
			}
		}
	}
	if !usedMAC {
		t.Error("baseline selection ignored the MAC complex instruction")
	}
	if len(a.AbsorbedBy) != 1 {
		t.Errorf("AbsorbedBy has %d entries, want 1", len(a.AbsorbedBy))
	}
	// The absorbed MUL must not have its own choice.
	for n := range a.AbsorbedBy {
		if _, chosen := a.Choice[n]; chosen {
			t.Error("absorbed node also chosen")
		}
	}
}

func TestBaselineOnDSPSuite(t *testing.T) {
	for _, w := range bench.DSPSuite() {
		sol, err := Compile(w.Block, isdl.ExampleArch(4))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := sol.Verify(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}

func TestBaselineClusteredMachine(t *testing.T) {
	sol, err := Compile(bench.Ex2().Block, isdl.ClusteredVLIW(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, sol)
	}
}
