// Package baseline implements a conventional sequential phase-ordered
// code generator for the same machine model: instruction selection first
// (greedy, transfer-blind unit binding), then scheduling (ready-list),
// then register allocation. It is the quantitative stand-in for the
// phase-coupled compilers the AVIV paper argues against (Sec. I, V): the
// comparison shows what performing the phases concurrently buys.
package baseline

import (
	"fmt"

	"aviv/internal/cover"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// SelectUnits performs classic instruction selection in isolation: every
// computation node is bound to the capable unit with the fewest nodes
// assigned so far (load balancing), without considering data transfers or
// the schedule. Complex-instruction alternatives are used greedily when
// available (longest match first), as tree-covering selectors do.
func SelectUnits(d *sndag.DAG) *cover.Assignment {
	a := &cover.Assignment{
		Choice:     make(map[*ir.Node]*sndag.Alt),
		AbsorbedBy: make(map[*ir.Node]*ir.Node),
	}
	loadPerUnit := make(map[string]int)
	// Top-down (roots first) so complex matches can absorb their interior
	// nodes before those nodes pick units of their own.
	for _, s := range d.TopDownOrder() {
		if _, absorbed := a.AbsorbedBy[s.Orig]; absorbed {
			continue
		}
		// Longest-match-first among alternatives whose absorbed interior
		// nodes are still free, then least-loaded unit.
		var best *sndag.Alt
		for _, alt := range s.Alts {
			usable := true
			for _, covered := range alt.Covers[1:] {
				if _, taken := a.AbsorbedBy[covered]; taken {
					usable = false
					break
				}
				if _, chosen := a.Choice[covered]; chosen {
					usable = false
					break
				}
			}
			if !usable {
				continue
			}
			if best == nil ||
				len(alt.Covers) > len(best.Covers) ||
				(len(alt.Covers) == len(best.Covers) &&
					loadPerUnit[alt.Unit.Name] < loadPerUnit[best.Unit.Name]) {
				best = alt
			}
		}
		a.Choice[s.Orig] = best
		loadPerUnit[best.Unit.Name]++
		for _, covered := range best.Covers[1:] {
			a.AbsorbedBy[covered] = s.Orig
		}
	}
	return a
}

// Compile runs the full sequential pipeline on one basic block and
// returns the covering-compatible solution (ready for regalloc and
// emission through the same back end as AVIV proper).
func Compile(b *ir.Block, m *isdl.Machine) (*cover.Solution, error) {
	d, err := sndag.Build(b, m)
	if err != nil {
		return nil, err
	}
	a := SelectUnits(d)
	opts := cover.DefaultOptions()
	sol, err := cover.ListSchedule(d, a, opts)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return sol, nil
}
