// Package regalloc performs the detailed register allocation of the AVIV
// paper's Sec. IV-F: conventional Chaitin-style graph coloring, run per
// register bank over the schedule produced by the covering step. Because
// covering bounded the per-bank register pressure with its liveness
// analysis, coloring with the given number of registers is guaranteed to
// succeed.
package regalloc

import (
	"fmt"
	"sort"

	"aviv/internal/cover"
	"aviv/internal/isdl"
)

// Allocation maps every value-defining node of a covering solution to a
// physical register in its bank.
type Allocation struct {
	Sol *cover.Solution
	// Reg holds the physical register index assigned to the value each
	// defining node produces.
	Reg map[*cover.SNode]int
	// Used counts, per bank, how many distinct registers the allocation
	// touches.
	Used map[string]int
}

// interval is a value's live range over instruction indices: occupied
// after def, through its last use (half-open on the def side so a value
// defined in the cycle another dies can reuse the register — reads happen
// before writes within a VLIW instruction).
type interval struct {
	node     *cover.SNode
	def, use int
}

// Allocate colors every register bank of the solution. It returns an
// error only if the solution violates its own pressure guarantee, which
// would indicate a covering bug.
func Allocate(sol *cover.Solution) (*Allocation, error) {
	pos := make(map[*cover.SNode]int)
	for i, instr := range sol.Instrs {
		for _, n := range instr {
			pos[n] = i
		}
	}

	byBank := make(map[string][]interval)
	for _, instr := range sol.Instrs {
		for _, n := range instr {
			loc, ok := n.DefLoc()
			if !ok || loc.Kind != isdl.LocUnit {
				continue
			}
			iv := interval{node: n, def: pos[n], use: pos[n]}
			for _, u := range n.Succs {
				if p, scheduled := pos[u]; scheduled && p > iv.use {
					iv.use = p
				}
			}
			if sol.ExternalUses[n] > 0 {
				iv.use = len(sol.Instrs) // live out of the block
			}
			byBank[loc.Name] = append(byBank[loc.Name], iv)
		}
	}

	alloc := &Allocation{
		Sol:  sol,
		Reg:  make(map[*cover.SNode]int),
		Used: make(map[string]int),
	}
	var banks []string
	for b := range byBank {
		banks = append(banks, b)
	}
	sort.Strings(banks)
	for _, bank := range banks {
		size := sol.Machine.BankSize(bank)
		if size == 0 {
			return nil, fmt.Errorf("regalloc: unknown bank %s", bank)
		}
		if err := colorBank(byBank[bank], size, alloc); err != nil {
			return nil, fmt.Errorf("regalloc: bank %s: %w", bank, err)
		}
		used := 0
		for _, iv := range byBank[bank] {
			if alloc.Reg[iv.node]+1 > used {
				used = alloc.Reg[iv.node] + 1
			}
		}
		alloc.Used[bank] = used
	}
	return alloc, nil
}

// colorBank builds the interference graph of the bank's intervals and
// colors it with k colors using Chaitin's simplify/select discipline.
func colorBank(ivs []interval, k int, alloc *Allocation) error {
	n := len(ivs)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if interferes(ivs[i], ivs[j]) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}

	// Simplify: repeatedly remove a node with degree < k.
	removed := make([]bool, n)
	degree := make([]int, n)
	for i := range adj {
		degree[i] = len(adj[i])
	}
	var stack []int
	for len(stack) < n {
		picked := -1
		for i := 0; i < n; i++ {
			if !removed[i] && degree[i] < k {
				picked = i
				break
			}
		}
		if picked < 0 {
			// The covering's liveness bound guarantees this cannot
			// happen (Sec. IV-F).
			return fmt.Errorf("graph not %d-colorable by simplification (covering pressure bound violated)", k)
		}
		removed[picked] = true
		stack = append(stack, picked)
		for _, j := range adj[picked] {
			degree[j]--
		}
	}

	// Select: pop in reverse, assigning the lowest free color.
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	for i := n - 1; i >= 0; i-- {
		v := stack[i]
		taken := make([]bool, k)
		for _, j := range adj[v] {
			if colors[j] >= 0 {
				taken[colors[j]] = true
			}
		}
		c := -1
		for col := 0; col < k; col++ {
			if !taken[col] {
				c = col
				break
			}
		}
		if c < 0 {
			return fmt.Errorf("no free color for interval (internal error)")
		}
		colors[v] = c
	}
	for i, iv := range ivs {
		alloc.Reg[iv.node] = colors[i]
	}
	return nil
}

// interferes reports whether two intervals overlap. Intervals are
// (def, use]: a value defined exactly when another is last read does not
// conflict (read-before-write within the instruction).
func interferes(a, b interval) bool {
	return a.def < b.use && b.def < a.use
}

// Verify checks that the allocation never assigns one register to two
// simultaneously live values and stays within each bank's size.
func (a *Allocation) Verify() error {
	pos := make(map[*cover.SNode]int)
	for i, instr := range a.Sol.Instrs {
		for _, n := range instr {
			pos[n] = i
		}
	}
	type slot struct {
		bank string
		reg  int
	}
	var all []interval
	for _, instr := range a.Sol.Instrs {
		for _, n := range instr {
			if loc, ok := n.DefLoc(); ok && loc.Kind == isdl.LocUnit {
				iv := interval{node: n, def: pos[n], use: pos[n]}
				for _, u := range n.Succs {
					if p, sch := pos[u]; sch && p > iv.use {
						iv.use = p
					}
				}
				if a.Sol.ExternalUses[n] > 0 {
					iv.use = len(a.Sol.Instrs)
				}
				all = append(all, iv)
			}
		}
	}
	for i := 0; i < len(all); i++ {
		ni := all[i].node
		loci, _ := ni.DefLoc()
		size := a.Sol.Machine.BankSize(loci.Name)
		ri, ok := a.Reg[ni]
		if !ok {
			return fmt.Errorf("regalloc: %s has no register", ni)
		}
		if size > 0 && ri >= size {
			return fmt.Errorf("regalloc: %s assigned R%d beyond bank size %d", ni, ri, size)
		}
		for j := i + 1; j < len(all); j++ {
			nj := all[j].node
			locj, _ := nj.DefLoc()
			if loci != locj {
				continue
			}
			if interferes(all[i], all[j]) && a.Reg[ni] == a.Reg[nj] {
				return fmt.Errorf("regalloc: %s and %s share %s.R%d while both live",
					ni, nj, loci.Name, a.Reg[ni])
			}
		}
	}
	return nil
}
