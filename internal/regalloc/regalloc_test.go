package regalloc

import (
	"testing"

	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/isdl"
)

func TestAllocatePaperWorkloads(t *testing.T) {
	for _, w := range bench.PaperWorkloads() {
		for _, regs := range []int{2, 4} {
			m := isdl.ExampleArch(regs)
			res, err := cover.CoverBlock(w.Block, m, cover.DefaultOptions())
			if err != nil {
				t.Fatalf("%s regs=%d: %v", w.Name, regs, err)
			}
			alloc, err := Allocate(res.Best)
			if err != nil {
				t.Fatalf("%s regs=%d: Allocate: %v", w.Name, regs, err)
			}
			if err := alloc.Verify(); err != nil {
				t.Fatalf("%s regs=%d: %v", w.Name, regs, err)
			}
			for bank, used := range alloc.Used {
				if used > regs {
					t.Errorf("%s: bank %s uses %d registers, file has %d",
						w.Name, bank, used, regs)
				}
			}
		}
	}
}

func TestIntervalSemantics(t *testing.T) {
	// (d, u] intervals: a value defined exactly when another dies may
	// share the register.
	a := interval{def: 0, use: 3}
	b := interval{def: 3, use: 5} // defined at a's last use
	if interferes(a, b) {
		t.Error("back-to-back intervals should not interfere")
	}
	c := interval{def: 2, use: 4}
	if !interferes(a, c) {
		t.Error("overlapping intervals must interfere")
	}
	if interferes(a, interval{def: 4, use: 6}) {
		t.Error("disjoint intervals must not interfere")
	}
	// Same def point.
	if !interferes(interval{def: 1, use: 4}, interval{def: 1, use: 2}) {
		t.Error("co-defined intervals must interfere")
	}
}

func TestColoringIsTight(t *testing.T) {
	// A block that alternates producers/consumers should reuse registers
	// rather than use a fresh one per value.
	w := bench.Chain(10)
	m := isdl.ExampleArch(4)
	res, err := cover.CoverBlock(w.Block, m, cover.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	for bank, used := range alloc.Used {
		if used > 2 {
			t.Errorf("serial chain uses %d registers in %s, want <= 2", used, bank)
		}
	}
}

func TestBranchCondPinnedToEnd(t *testing.T) {
	// The condition holder must not share a register with values defined
	// later in the block.
	src := bench.Ex1()
	_ = src
	m := isdl.ExampleArch(4)
	w := bench.Ex2()
	blk := w.Block
	// Rebuild Ex2's block with a branch on its first store value.
	res, err := cover.CoverBlock(blk, m, cover.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatal(err)
	}
}
