// Package diskcache is the persistent tier of the two-tier compile
// cache: a crash-safe, content-addressed store of serialized coverings
// keyed by the covering engine's (block, machine, options) content
// fingerprints.
//
// Layout: entries live under dir/<v1>/<aa>/<hex key>, where <aa> is the
// first byte of the key in hex — 256 shards keep directory listings
// short under millions of entries. Each entry is one file framed as
//
//	magic "AVDC" | format u32 | payload length u64 | sha256(payload) | payload
//
// (fixed-width big-endian header). Writes go to a same-directory
// temporary file first and are renamed into place, so a reader never
// observes a partially written entry under POSIX rename atomicity; a
// crash mid-write leaves only a stale *.tmp file that Open sweeps.
// Reads re-verify the checksum, so torn writes, truncation, version
// skew, and bit rot all degrade to cache misses — the store can only
// ever skip work, never change output.
//
// The cache is size-bounded: when the payload bytes on disk exceed
// MaxBytes after a write, the oldest entries by modification time are
// evicted until the total is under the limit again (LRU-ish: Get
// re-touches entries it serves, so hot entries survive). Eviction is
// best-effort and tolerates concurrent processes removing the same
// files.
package diskcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	magic = "AVDC"
	// formatVersion frames the container; the payload carries its own
	// codec version on top.
	formatVersion = 1
	headerSize    = 4 + 4 + 8 + sha256.Size
	// versionDir isolates incompatible on-disk layouts from each other.
	versionDir = "v1"
)

// Stats is a snapshot of cache-effectiveness and integrity counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Writes    int64 `json:"writes"`
	Evictions int64 `json:"evictions"`
	// Corrupt counts entries rejected by framing or checksum checks
	// (each also counted as a miss).
	Corrupt int64 `json:"corrupt"`
	// Deletes counts entries removed through Delete — callers invalidating
	// entries that read back clean but no longer decode (codec version
	// skew), so the slot is rewritten instead of failing on every lookup.
	Deletes int64 `json:"deletes"`
	// WriteErrors counts best-effort writes that failed (disk full,
	// permissions); each is swallowed and the entry simply not cached.
	WriteErrors int64 `json:"write_errors"`
	// Bytes is the payload volume currently accounted on disk.
	Bytes int64 `json:"bytes"`
}

// Cache is a content-addressed on-disk entry store implementing
// cover.EntryStore. Safe for concurrent use by multiple goroutines and
// — because every write is atomic and every read checksummed — by
// multiple processes sharing the directory.
type Cache struct {
	dir      string
	maxBytes int64

	mu        sync.Mutex
	bytes     int64
	hits      int64
	misses    int64
	writes    int64
	evictions int64
	corrupt   int64
	deletes   int64
	writeErrs int64
}

// Open creates (if needed) and opens the cache rooted at dir. maxBytes
// bounds the total payload volume; <= 0 means unbounded. Stale
// temporary files from crashed writers are swept, and the current disk
// usage is measured so the size bound holds across process restarts.
func Open(dir string, maxBytes int64) (*Cache, error) {
	root := filepath.Join(dir, versionDir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	c := &Cache{dir: root, maxBytes: maxBytes}
	var bytes int64
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // a vanished file is another process evicting
		}
		if strings.HasSuffix(path, ".tmp") {
			// Leftover from a crashed writer; old enough to be certainly
			// abandoned (a live writer renames within milliseconds).
			if info, err := d.Info(); err == nil && time.Since(info.ModTime()) > time.Minute {
				os.Remove(path)
			}
			return nil
		}
		if info, err := d.Info(); err == nil {
			if sz := info.Size() - headerSize; sz > 0 {
				bytes += sz
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("diskcache: scanning %s: %w", root, err)
	}
	c.bytes = bytes
	return c, nil
}

// Dir returns the versioned root directory of the cache.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Writes:      c.writes,
		Evictions:   c.evictions,
		Corrupt:     c.corrupt,
		Deletes:     c.deletes,
		WriteErrors: c.writeErrs,
		Bytes:       c.bytes,
	}
}

func (c *Cache) path(key [sha256.Size]byte) string {
	name := hex.EncodeToString(key[:])
	return filepath.Join(c.dir, name[:2], name)
}

// Get returns the payload stored under key. Every failure — absent
// entry, bad framing, checksum mismatch — is reported as a plain miss;
// corrupted entries are additionally removed so they are re-written
// cleanly on the next Put.
func (c *Cache) Get(key [sha256.Size]byte) ([]byte, bool) {
	path := c.path(key)
	payload, err := readEntry(path)
	if err != nil {
		c.mu.Lock()
		c.misses++
		if !errors.Is(err, fs.ErrNotExist) {
			c.corrupt++
		}
		c.mu.Unlock()
		if !errors.Is(err, fs.ErrNotExist) {
			c.dropEntry(path)
		}
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	// Touch for LRU-ish eviction ordering; best-effort.
	now := time.Now()
	os.Chtimes(path, now, now)
	return payload, true
}

func readEntry(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeEntry(data)
}

// EncodeEntry frames payload exactly as an on-disk entry file is laid
// out: magic, format version, length, sha256, payload. The framing
// doubles as the cluster cache-peering wire format — an entry read
// from one node's store can be shipped verbatim and re-verified by the
// receiver with DecodeEntry, so a truncated or bit-flipped transfer
// degrades to a miss, never to a wrong payload.
func EncodeEntry(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out[:4], magic)
	binary.BigEndian.PutUint32(out[4:8], formatVersion)
	binary.BigEndian.PutUint64(out[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[16:], sum[:])
	copy(out[headerSize:], payload)
	return out
}

// DecodeEntry verifies a framed entry — magic, version, exact length,
// checksum, no trailing bytes — and returns its payload. It is the
// single validation path for entries however they arrive: read from
// this node's disk, or transferred from a peer.
func DecodeEntry(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("short header: %d bytes", len(data))
	}
	if string(data[:4]) != magic {
		return nil, errors.New("bad magic")
	}
	if v := binary.BigEndian.Uint32(data[4:8]); v != formatVersion {
		return nil, fmt.Errorf("format version %d, want %d", v, formatVersion)
	}
	n := binary.BigEndian.Uint64(data[8:16])
	const maxEntry = 1 << 30 // defensive: no covering is a gigabyte
	if n > maxEntry {
		return nil, fmt.Errorf("implausible payload length %d", n)
	}
	if uint64(len(data)-headerSize) < n {
		return nil, fmt.Errorf("short payload: %d of %d bytes", len(data)-headerSize, n)
	}
	// Trailing garbage means the entry is not what a writer framed.
	if uint64(len(data)-headerSize) > n {
		return nil, errors.New("trailing bytes after payload")
	}
	payload := data[headerSize:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[16:16+sha256.Size]) {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// Put stores payload under key. Best-effort by contract: any failure is
// counted and swallowed (a failed write is just a future miss). The
// write is atomic — temp file in the target directory, fsync, rename —
// so concurrent readers and writers, including other processes, never
// observe partial entries; last writer wins, and all writers store
// identical content for a given key anyway.
func (c *Cache) Put(key [sha256.Size]byte, payload []byte) {
	path := c.path(key)
	// An overwrite replaces the old entry's payload on disk; account the
	// difference, not the sum, or repeated rewrites of hot keys inflate
	// c.bytes until eviction runs on a phantom volume. Best-effort (a
	// concurrent writer may race the stat); evict re-measures anyway.
	var replaced int64
	if info, err := os.Stat(path); err == nil {
		if sz := info.Size() - headerSize; sz > 0 {
			replaced = sz
		}
	}
	if err := c.writeEntry(path, payload); err != nil {
		c.mu.Lock()
		c.writeErrs++
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	c.writes++
	c.bytes += int64(len(payload)) - replaced
	needEvict := c.maxBytes > 0 && c.bytes > c.maxBytes
	c.mu.Unlock()
	if needEvict {
		c.evict()
	}
}

// Delete removes the entry for key, if present, and counts the
// deletion. It is the invalidation path for entries whose payload is
// intact on disk (the checksum holds, so Get keeps serving it) but can
// no longer be decoded by the caller — without deletion such an entry
// would fail decode on every future lookup while its freshly touched
// mtime keeps it at the young end of the eviction order, crowding out
// entries that still work. Implements cover.DeletableStore.
func (c *Cache) Delete(key [sha256.Size]byte) {
	path := c.path(key)
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	sz := info.Size() - headerSize
	if os.Remove(path) != nil {
		return
	}
	c.mu.Lock()
	if sz > 0 {
		c.bytes -= sz
	}
	c.deletes++
	c.mu.Unlock()
}

func (c *Cache) writeEntry(path string, payload []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(EncodeEntry(payload)); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Keys lists the keys of every entry currently on disk, in sorted
// order. It is the enumeration behind a cluster node's graceful drain:
// each locally held entry is offered to its ring owner before the node
// shuts down. Files that do not look like entries (temporaries,
// foreign names) are skipped; concurrent eviction is tolerated — a key
// may be gone by the time the caller Gets it, which is just a miss.
func (c *Cache) Keys() [][sha256.Size]byte {
	var keys [][sha256.Size]byte
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		raw, err := hex.DecodeString(filepath.Base(path))
		if err != nil || len(raw) != sha256.Size {
			return nil
		}
		var key [sha256.Size]byte
		copy(key[:], raw)
		keys = append(keys, key)
		return nil
	})
	sort.Slice(keys, func(i, j int) bool {
		return string(keys[i][:]) < string(keys[j][:])
	})
	return keys
}

// dropEntry removes a corrupted entry and un-accounts its payload bytes.
func (c *Cache) dropEntry(path string) {
	info, err := os.Stat(path)
	var sz int64
	if err == nil {
		sz = info.Size() - headerSize
	}
	if os.Remove(path) == nil && sz > 0 {
		c.mu.Lock()
		c.bytes -= sz
		c.mu.Unlock()
	}
}

// evict removes oldest-modified entries until total payload bytes fit
// the bound again. Races with other evicting processes are benign: a
// file already removed simply does not decrement our accounting twice,
// and under-counting only makes eviction run once more.
func (c *Cache) evict() {
	type entry struct {
		path string
		mod  time.Time
		size int64
	}
	var entries []entry
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		if info, err := d.Info(); err == nil {
			entries = append(entries, entry{path, info.ModTime(), info.Size() - headerSize})
		}
		return nil
	})
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mod.Equal(entries[j].mod) {
			return entries[i].mod.Before(entries[j].mod)
		}
		return entries[i].path < entries[j].path
	})
	// Re-measure while evicting: accounting drift (multi-process use)
	// must not cause runaway deletion.
	total := int64(0)
	for _, e := range entries {
		if e.size > 0 {
			total += e.size
		}
	}
	c.mu.Lock()
	c.bytes = total
	c.mu.Unlock()
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			// A foreign or truncated file can report a negative payload
			// size; clamp so removing it never *grows* the accounting.
			sz := e.size
			if sz < 0 {
				sz = 0
			}
			total -= sz
			c.mu.Lock()
			c.bytes -= sz
			c.evictions++
			c.mu.Unlock()
		}
	}
}
