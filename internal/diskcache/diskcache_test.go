package diskcache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"aviv/internal/cover"
)

// The store must satisfy the covering engine's persistent-tier contract.
var _ cover.EntryStore = (*Cache)(nil)

func keyOf(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

func openTemp(t *testing.T, maxBytes int64) *Cache {
	t.Helper()
	c, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openTemp(t, 0)
	key := keyOf("k1")
	payload := []byte("the covering payload")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, payload)
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload, true", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
	if st.Bytes != int64(len(payload)) {
		t.Errorf("bytes = %d, want %d", st.Bytes, len(payload))
	}
}

func TestEmptyPayload(t *testing.T) {
	c := openTemp(t, 0)
	key := keyOf("empty")
	c.Put(key, nil)
	got, ok := c.Get(key)
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload round trip: %q, %v", got, ok)
	}
}

// corruptVariants mutates a valid on-disk entry in every way the
// acceptance criteria call out. All must degrade to misses.
func TestCorruptedEntriesAreMisses(t *testing.T) {
	key := keyOf("victim")
	payload := []byte("payload bytes to protect")

	variants := []struct {
		name   string
		mutate func(data []byte) []byte
	}{
		{"truncated-header", func(d []byte) []byte { return d[:headerSize/2] }},
		{"truncated-payload", func(d []byte) []byte { return d[:headerSize+3] }},
		{"empty-file", func(d []byte) []byte { return nil }},
		{"bad-magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"wrong-version", func(d []byte) []byte { d[7] = formatVersion + 1; return d }},
		{"flipped-payload-bit", func(d []byte) []byte { d[headerSize] ^= 0x40; return d }},
		{"flipped-checksum-bit", func(d []byte) []byte { d[20] ^= 0x01; return d }},
		{"trailing-garbage", func(d []byte) []byte { return append(d, 0xEE) }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			c := openTemp(t, 0)
			c.Put(key, payload)
			path := c.path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading entry back: %v", err)
			}
			if err := os.WriteFile(path, v.mutate(data), 0o644); err != nil {
				t.Fatalf("corrupting entry: %v", err)
			}
			if got, ok := c.Get(key); ok {
				t.Fatalf("corrupted entry served as hit: %q", got)
			}
			if st := c.Stats(); st.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
			}
			// The bad entry is dropped, so a re-Put restores service.
			c.Put(key, payload)
			if got, ok := c.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatal("re-Put after corruption did not restore the entry")
			}
		})
	}
}

func TestConcurrentGoroutineWriters(t *testing.T) {
	c := openTemp(t, 0)
	const workers = 8
	const keys = 16
	payloadFor := func(k int) []byte {
		return bytes.Repeat([]byte{byte(k)}, 64+k)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				for k := 0; k < keys; k++ {
					key := keyOf(fmt.Sprintf("key-%d", k))
					if got, ok := c.Get(key); ok && !bytes.Equal(got, payloadFor(k)) {
						t.Errorf("key %d served wrong payload under concurrency", k)
						return
					}
					c.Put(key, payloadFor(k))
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		got, ok := c.Get(keyOf(fmt.Sprintf("key-%d", k)))
		if !ok || !bytes.Equal(got, payloadFor(k)) {
			t.Fatalf("key %d missing or wrong after concurrent writes", k)
		}
	}
	if st := c.Stats(); st.Corrupt != 0 {
		t.Errorf("concurrent same-content writers produced %d corrupt reads", st.Corrupt)
	}
}

// TestTwoProcessWriters re-executes the test binary so two OS processes
// hammer one cache directory. Atomic rename plus checksummed reads must
// keep every observed entry intact.
func TestTwoProcessWriters(t *testing.T) {
	if os.Getenv("DISKCACHE_HELPER_DIR") != "" {
		t.Skip("helper mode runs via TestDiskCacheHelperProcess")
	}
	dir := t.TempDir()
	const procs = 2
	var procErr [procs]error
	var out [procs][]byte
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestDiskCacheHelperProcess$", "-test.v")
			cmd.Env = append(os.Environ(),
				"DISKCACHE_HELPER_DIR="+dir,
				fmt.Sprintf("DISKCACHE_HELPER_SEED=%d", p))
			out[p], procErr[p] = cmd.CombinedOutput()
		}(p)
	}
	wg.Wait()
	for p := 0; p < procs; p++ {
		if procErr[p] != nil {
			t.Fatalf("helper process %d failed: %v\n%s", p, procErr[p], out[p])
		}
	}
	// Every entry both processes wrote must read back intact here too.
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("reopening shared dir: %v", err)
	}
	for k := 0; k < 8; k++ {
		got, ok := c.Get(keyOf(fmt.Sprintf("shared-%d", k)))
		if !ok {
			t.Fatalf("shared key %d missing after two-process run", k)
		}
		if want := bytes.Repeat([]byte{byte(k)}, 128); !bytes.Equal(got, want) {
			t.Fatalf("shared key %d has wrong payload", k)
		}
	}
	if st := c.Stats(); st.Corrupt != 0 {
		t.Errorf("two-process run left %d corrupt entries", st.Corrupt)
	}
}

// TestDiskCacheHelperProcess is the body run inside the subprocesses of
// TestTwoProcessWriters; it skips unless launched by it.
func TestDiskCacheHelperProcess(t *testing.T) {
	dir := os.Getenv("DISKCACHE_HELPER_DIR")
	if dir == "" {
		t.Skip("not in helper mode")
	}
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("helper Open: %v", err)
	}
	for iter := 0; iter < 50; iter++ {
		for k := 0; k < 8; k++ {
			key := keyOf(fmt.Sprintf("shared-%d", k))
			want := bytes.Repeat([]byte{byte(k)}, 128)
			if got, ok := c.Get(key); ok && !bytes.Equal(got, want) {
				t.Fatalf("helper observed wrong payload for key %d", k)
			}
			c.Put(key, want)
		}
	}
	if st := c.Stats(); st.Corrupt != 0 {
		t.Fatalf("helper observed %d corrupt entries", st.Corrupt)
	}
}

func TestEvictionRespectsBound(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	c, err := Open(dir, 3500) // room for three 1000-byte payloads, not five
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		key := keyOf(fmt.Sprintf("evict-%d", i))
		c.Put(key, payload)
		// Backdate older entries explicitly: filesystem mtime granularity
		// is too coarse to order sub-millisecond writes.
		mod := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(c.path(key), mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	// One more write triggers eviction of the oldest entries.
	c.Put(keyOf("evict-last"), payload)
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte bound")
	}
	if st.Bytes > 3500 {
		t.Errorf("bytes = %d, want <= 3500 after eviction", st.Bytes)
	}
	if _, ok := c.Get(keyOf("evict-0")); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Get(keyOf("evict-last")); !ok {
		t.Error("newest entry was evicted")
	}
}

func TestOpenMeasuresExistingAndSweepsTmp(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 500)
	c.Put(keyOf("persist"), payload)

	// A fresh, old tmp file simulating a crashed writer.
	stale := filepath.Join(c.Dir(), "00", "deadbeef.123.tmp")
	if err := os.MkdirAll(filepath.Dir(stale), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Minute)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Bytes != int64(len(payload)) {
		t.Errorf("reopened cache accounts %d bytes, want %d", st.Bytes, len(payload))
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale tmp file survived Open")
	}
	if got, ok := c2.Get(keyOf("persist")); !ok || !bytes.Equal(got, payload) {
		t.Error("entry did not survive reopen")
	}
}

// diskUsage sums the payload bytes of every entry file under the cache
// root — the ground truth the accounting must track.
func diskUsage(t *testing.T, c *Cache) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(c.Dir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		if sz := info.Size() - headerSize; sz > 0 {
			total += sz
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestDeleteInvalidatesEntry pins the deletion-as-miss path the delta
// engine uses for entries that read back clean but no longer decode.
func TestDeleteInvalidatesEntry(t *testing.T) {
	c := openTemp(t, 0)
	key := keyOf("stale-covering")
	c.Put(key, bytes.Repeat([]byte{7}, 300))
	c.Delete(key)
	if _, ok := c.Get(key); ok {
		t.Fatal("deleted entry still served")
	}
	st := c.Stats()
	if st.Deletes != 1 {
		t.Errorf("deletes = %d, want 1", st.Deletes)
	}
	if st.Bytes != 0 {
		t.Errorf("bytes = %d after deleting the only entry, want 0", st.Bytes)
	}
	// Deleting an absent key is a silent no-op.
	c.Delete(keyOf("never-written"))
	if st := c.Stats(); st.Deletes != 1 {
		t.Errorf("no-op delete counted: deletes = %d, want 1", st.Deletes)
	}
	// The slot is immediately rewritable.
	c.Put(key, []byte("fresh"))
	if got, ok := c.Get(key); !ok || !bytes.Equal(got, []byte("fresh")) {
		t.Fatal("re-Put after Delete did not restore service")
	}
}

// TestPutOverwriteAccounting: rewriting a key must account the byte
// delta, not the sum — otherwise per-block entries rewritten on every
// invalidation inflate the accounted volume until eviction runs against
// a phantom total.
func TestPutOverwriteAccounting(t *testing.T) {
	c := openTemp(t, 0)
	key := keyOf("rewritten-block")
	c.Put(key, bytes.Repeat([]byte{1}, 1000))
	c.Put(key, bytes.Repeat([]byte{2}, 400))
	if st := c.Stats(); st.Bytes != 400 {
		t.Fatalf("bytes = %d after shrinking overwrite, want 400", st.Bytes)
	}
	c.Put(key, bytes.Repeat([]byte{3}, 1000))
	if st := c.Stats(); st.Bytes != 1000 {
		t.Fatalf("bytes = %d after growing overwrite, want 1000", st.Bytes)
	}
	c.Put(keyOf("other"), bytes.Repeat([]byte{4}, 50))
	c.Delete(key)
	st := c.Stats()
	if want := diskUsage(t, c); st.Bytes != want {
		t.Fatalf("accounted %d bytes, disk holds %d", st.Bytes, want)
	}
}

// TestTouchOnHitProtectsHotEntries: Get refreshes an entry's mtime, so a
// per-block entry that keeps stitching survives eviction even when it
// was written long before colder entries.
func TestTouchOnHitProtectsHotEntries(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{0xCD}, 1000)
	c, err := Open(dir, 3500)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		key := keyOf(fmt.Sprintf("block-%d", i))
		c.Put(key, payload)
		mod := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(c.path(key), mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	// The oldest-written entry is the hot one: a hit re-touches it.
	if _, ok := c.Get(keyOf("block-0")); !ok {
		t.Fatal("hot entry missing before eviction")
	}
	// Two more writes push the volume past the bound; eviction must take
	// the stale block-1/block-2, not the freshly touched block-0.
	c.Put(keyOf("block-3"), payload)
	c.Put(keyOf("block-4"), payload)
	if _, ok := c.Get(keyOf("block-0")); !ok {
		t.Fatal("touched entry was evicted despite being hottest")
	}
	if _, ok := c.Get(keyOf("block-1")); ok {
		t.Fatal("stale entry survived while the bound was exceeded")
	}
	if st := c.Stats(); st.Bytes > 3500 {
		t.Errorf("bytes = %d, want <= 3500 after eviction", st.Bytes)
	}
}

// TestTwoProcessDeltaStress extends the multi-process stress to the
// delta tier's access pattern: concurrent Put/Get/Delete over per-block
// keys from two OS processes sharing one directory. Every observed
// payload must be intact, and the directory must end re-servable.
func TestTwoProcessDeltaStress(t *testing.T) {
	if os.Getenv("DISKCACHE_DELTA_DIR") != "" {
		t.Skip("helper mode runs via TestDiskCacheDeltaHelperProcess")
	}
	dir := t.TempDir()
	const procs = 2
	var procErr [procs]error
	var out [procs][]byte
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestDiskCacheDeltaHelperProcess$", "-test.v")
			cmd.Env = append(os.Environ(),
				"DISKCACHE_DELTA_DIR="+dir,
				fmt.Sprintf("DISKCACHE_DELTA_SEED=%d", p))
			out[p], procErr[p] = cmd.CombinedOutput()
		}(p)
	}
	wg.Wait()
	for p := 0; p < procs; p++ {
		if procErr[p] != nil {
			t.Fatalf("helper process %d failed: %v\n%s", p, procErr[p], out[p])
		}
	}
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("reopening shared dir: %v", err)
	}
	// Deletions may have removed any key; what remains must be intact,
	// and every slot must be rewritable.
	for k := 0; k < 8; k++ {
		key := keyOf(fmt.Sprintf("blockkey-%d", k))
		if got, ok := c.Get(key); ok {
			if want := bytes.Repeat([]byte{byte(k)}, 96+k); !bytes.Equal(got, want) {
				t.Fatalf("block key %d has wrong payload after stress", k)
			}
		}
		c.Put(key, bytes.Repeat([]byte{byte(k)}, 96+k))
		if _, ok := c.Get(key); !ok {
			t.Fatalf("block key %d not servable after re-Put", k)
		}
	}
	if st := c.Stats(); st.Corrupt != 0 {
		t.Errorf("delta stress left %d corrupt reads", st.Corrupt)
	}
	if want := diskUsage(t, c); c.Stats().Bytes != want {
		t.Errorf("accounted %d bytes, disk holds %d", c.Stats().Bytes, want)
	}
}

// TestDiskCacheDeltaHelperProcess is the body run inside the
// subprocesses of TestTwoProcessDeltaStress; it skips unless launched
// by it.
func TestDiskCacheDeltaHelperProcess(t *testing.T) {
	dir := os.Getenv("DISKCACHE_DELTA_DIR")
	if dir == "" {
		t.Skip("not in helper mode")
	}
	seed := os.Getenv("DISKCACHE_DELTA_SEED")
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("helper Open: %v", err)
	}
	for iter := 0; iter < 50; iter++ {
		for k := 0; k < 8; k++ {
			key := keyOf(fmt.Sprintf("blockkey-%d", k))
			want := bytes.Repeat([]byte{byte(k)}, 96+k)
			if got, ok := c.Get(key); ok && !bytes.Equal(got, want) {
				t.Fatalf("helper observed wrong payload for block key %d", k)
			}
			c.Put(key, want)
			// Each process invalidates a different key slice, mimicking two
			// delta engines racing deletion-as-miss against re-population.
			if (k+iter)%4 == 0 && (seed == "0") == (k%2 == 0) {
				c.Delete(key)
			}
		}
	}
	if st := c.Stats(); st.Corrupt != 0 {
		t.Fatalf("helper observed %d corrupt reads", st.Corrupt)
	}
}

// TestEntryWireCorruptionTable extends the corruption table to the
// cluster peering wire path: EncodeEntry's framing is what a node ships
// to a peer, and DecodeEntry must reject every mutation a lossy or
// hostile transfer could produce — so a bad transfer can only ever
// degrade to a miss (and a local compile), never to a wrong payload.
func TestEntryWireCorruptionTable(t *testing.T) {
	payload := []byte("peer-transferred covering payload")
	framed := EncodeEntry(payload)

	if got, err := DecodeEntry(append([]byte(nil), framed...)); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("clean transfer rejected: %q, %v", got, err)
	}

	variants := []struct {
		name   string
		mutate func(d []byte) []byte
	}{
		{"truncated-header", func(d []byte) []byte { return d[:headerSize/2] }},
		{"truncated-body", func(d []byte) []byte { return d[:len(d)-5] }},
		{"empty-transfer", func(d []byte) []byte { return nil }},
		{"bad-magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"wrong-version", func(d []byte) []byte { d[7] = formatVersion + 1; return d }},
		{"bit-flipped-body", func(d []byte) []byte { d[headerSize+2] ^= 0x08; return d }},
		{"bit-flipped-checksum", func(d []byte) []byte { d[20] ^= 0x01; return d }},
		{"length-overstated", func(d []byte) []byte { d[15]++; return d }},
		{"trailing-garbage", func(d []byte) []byte { return append(d, 0xEE) }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			data := v.mutate(append([]byte(nil), framed...))
			if got, err := DecodeEntry(data); err == nil {
				t.Fatalf("corrupted transfer accepted: %q", got)
			}
		})
	}
}

// TestKeysEnumeratesEntries pins the drain enumeration: Keys returns
// exactly the stored keys, sorted, and skips temporaries and foreign
// files.
func TestKeysEnumeratesEntries(t *testing.T) {
	c := openTemp(t, 0)
	want := map[[sha256.Size]byte]bool{}
	for i := 0; i < 5; i++ {
		key := keyOf(fmt.Sprintf("k%d", i))
		c.Put(key, []byte{byte(i)})
		want[key] = true
	}
	// Distractors: a stale temporary and a foreign file.
	if err := os.MkdirAll(filepath.Join(c.Dir(), "aa"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), "aa", "stray.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	keys := c.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys() returned %d keys, want %d", len(keys), len(want))
	}
	for i, k := range keys {
		if !want[k] {
			t.Errorf("Keys()[%d] = %x not a stored key", i, k)
		}
		if i > 0 && string(keys[i-1][:]) >= string(k[:]) {
			t.Errorf("Keys() not sorted at %d", i)
		}
	}
}
