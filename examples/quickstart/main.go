// Quickstart: compile the paper's running example — the Fig. 2 basic
// block out = (a+b) - (c*d) — for the Fig. 3 example VLIW architecture,
// print every intermediate artifact of the Fig. 1 flow, and validate the
// generated code on the instruction-level simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aviv"
	"aviv/internal/asm"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sim"
)

func main() {
	// 1. The target processor, written in the ISDL-flavored description
	//    language (this is the paper's Fig. 3 machine).
	machine, err := aviv.LoadMachine(isdl.ExampleArchISDL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== machine description and derived databases ===")
	fmt.Println(machine.Describe())

	// 2. The input basic block, built directly as an expression DAG
	//    (programs can also be compiled from mini-C source with
	//    aviv.CompileSource).
	bb := ir.NewBuilder("fig2")
	sum := bb.Add(bb.Load("a"), bb.Load("b"))
	prod := bb.Mul(bb.Load("c"), bb.Load("d"))
	bb.Store("out", bb.Sub(sum, prod))
	bb.Return()
	f := &ir.Func{Name: "quickstart", Blocks: []*ir.Block{bb.Finish()}}
	fmt.Println("=== input basic block DAG (Fig. 2) ===")
	fmt.Println(f)

	// 3. Compile: Split-Node DAG, concurrent covering, register
	//    allocation, peephole, emission.
	res, err := aviv.Compile(f, machine, aviv.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	br := res.Blocks[0]
	fmt.Println("=== Split-Node DAG (Fig. 4) ===")
	fmt.Println(br.DAG.Describe())
	fmt.Printf("=== covering solution: %d instructions, %d spills (paper Table I Ex1: 7) ===\n",
		br.Solution.Cost(), br.Solution.SpillCount)
	fmt.Println(br.Solution)
	fmt.Println("=== assembly ===")
	fmt.Println(res.Program)

	// 4. Assemble to a binary object and execute it on the simulator.
	obj := asm.Encode(res.Program)
	prog, err := asm.Decode(obj, machine)
	if err != nil {
		log.Fatal(err)
	}
	mem := map[string]int64{"a": 10, "b": 32, "c": 6, "d": 7}
	final, cycles, err := sim.RunProgram(prog, mem, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== simulation: %d cycles, out = %d (want (10+32)-(6*7) = 0) ===\n",
		cycles, final["out"])
	if final["out"] != 0 {
		log.Fatal("simulation result mismatch")
	}
}
