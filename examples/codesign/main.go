// codesign: the full hardware/software co-design loop of the paper's
// Sec. I — enumerate candidate ASIP configurations, retarget the same
// application to each with AVIV, and weigh *silicon area* against *code
// ROM size* (the resource the paper optimizes for). The output is the
// Pareto frontier a designer would choose from.
//
//	go run ./examples/codesign
package main

import (
	"fmt"
	"log"
	"sort"

	"aviv"
	"aviv/internal/asm"
	"aviv/internal/bench"
	"aviv/internal/ir"
	"aviv/internal/isdl"
)

type candidate struct {
	name string
	m    *isdl.Machine

	hwCost  int
	instrs  int
	romBits int
	ok      bool
}

func main() {
	// The application: the paper's five DSP blocks compiled as one
	// program each (code sizes summed), the way an embedded image would
	// bundle its kernels.
	app := bench.PaperWorkloads()

	var candidates []*candidate
	for _, units := range []int{1, 2, 3} {
		for _, regs := range []int{2, 4} {
			for _, busW := range []int{1, 2} {
				candidates = append(candidates, &candidate{
					name: fmt.Sprintf("u%d-r%d-b%d", units, regs, busW),
					m:    buildMachine(units, regs, busW),
				})
			}
		}
	}

	for _, c := range candidates {
		c.hwCost = c.m.HardwareCost()
		layout := asm.NewWordLayout(c.m)
		total := 0
		ok := true
		for _, w := range app {
			f := &ir.Func{Name: w.Name, Blocks: []*ir.Block{w.Block}}
			res, err := aviv.Compile(f, c.m, aviv.DefaultOptions())
			if err != nil {
				ok = false
				break
			}
			total += res.CodeSize()
		}
		c.ok = ok
		if ok {
			c.instrs = total
			c.romBits = total * layout.Bits
		}
	}

	fmt.Println("Candidate ASIPs for the 5-kernel DSP application:")
	fmt.Printf("%-10s %8s %8s %10s %9s\n", "machine", "hw area", "instrs", "ROM bits", "pareto")
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].hwCost < candidates[j].hwCost })
	for _, c := range candidates {
		if !c.ok {
			fmt.Printf("%-10s %8d %8s %10s\n", c.name, c.hwCost, "-", "infeasible")
			continue
		}
		mark := ""
		if isPareto(c, candidates) {
			mark = "*"
		}
		fmt.Printf("%-10s %8d %8d %10d %9s\n", c.name, c.hwCost, c.instrs, c.romBits, mark)
	}
	fmt.Println(`
'*' marks Pareto-optimal designs (no other candidate is better on both
silicon area and code ROM). This is the iteration loop of the paper's
Sec. I: partition, pick an ASIP, generate code with the retargetable
compiler, evaluate, repeat — made automatic.`)

	// Sanity: the loop must find at least two Pareto points (a cheap
	// machine with bigger code and a bigger machine with smaller code).
	pareto := 0
	for _, c := range candidates {
		if c.ok && isPareto(c, candidates) {
			pareto++
		}
	}
	if pareto < 2 {
		log.Fatalf("degenerate design space: %d Pareto points", pareto)
	}
}

func buildMachine(units, regs, busW int) *isdl.Machine {
	m := isdl.NewMachine(fmt.Sprintf("ASIP-u%d-r%d-b%d", units, regs, busW))
	switch units {
	case 1:
		m.AddUnit("U1", regs, ir.OpAdd, ir.OpSub, ir.OpMul)
	case 2:
		m.AddUnit("U1", regs, ir.OpAdd, ir.OpSub, ir.OpCompl)
		m.AddUnit("U2", regs, ir.OpAdd, ir.OpSub, ir.OpMul)
	default:
		m.AddUnit("U1", regs, ir.OpAdd, ir.OpSub, ir.OpCompl)
		m.AddUnit("U2", regs, ir.OpAdd, ir.OpSub, ir.OpMul)
		m.AddUnit("U3", regs, ir.OpAdd, ir.OpMul)
	}
	m.AddMemory("DM")
	m.AddBus("DB", busW)
	m.ConnectAll("DB")
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

func isPareto(c *candidate, all []*candidate) bool {
	for _, o := range all {
		if !o.ok || o == c {
			continue
		}
		if o.hwCost <= c.hwCost && o.romBits <= c.romBits &&
			(o.hwCost < c.hwCost || o.romBits < c.romBits) {
			return false
		}
	}
	return true
}
