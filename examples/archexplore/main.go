// archexplore: the hardware/software co-design loop of the paper's
// Sec. I and VI — evaluate candidate ASIP architectures by retargeting
// the same application code and comparing the resulting code size. This
// reproduces the paper's own experiment ("we changed the target
// architecture by removing the SUB operation from U1 and completely
// removing functional unit U3") and extends it across a small design
// space: unit counts, register file sizes, and bus widths.
//
//	go run ./examples/archexplore
package main

import (
	"fmt"
	"log"

	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/ir"
	"aviv/internal/isdl"
)

func main() {
	workloads := bench.PaperWorkloads()

	type candidate struct {
		name string
		m    *isdl.Machine
	}
	candidates := []candidate{
		{"ExampleArch (3 units)", isdl.ExampleArch(4)},
		{"ArchitectureII (2 units)", isdl.ArchitectureII(4)},
		{"SingleIssue (1 unit)", isdl.SingleIssueDSP(4)},
		{"ExampleArch, 2 regs", isdl.ExampleArch(2)},
		{"ExampleArch, wide bus", wideBus()},
		{"No-MUL-on-U3", noMulU3()},
		{"ClusteredVLIW (2x2 units)", isdl.ClusteredVLIW(4)},
		{"DualMemDSP (X/Y memory)", isdl.DualMemDSP(4)},
	}

	fmt.Println("Design-space exploration: code size (instructions) per block per machine")
	fmt.Printf("%-26s", "machine")
	for _, w := range workloads {
		fmt.Printf("%6s", w.Name)
	}
	fmt.Printf("%8s\n", "total")
	for _, c := range candidates {
		fmt.Printf("%-26s", c.name)
		total := 0
		for _, w := range workloads {
			res, err := cover.CoverBlock(w.Block, c.m, cover.DefaultOptions())
			if err != nil {
				log.Fatalf("%s / %s: %v", c.name, w.Name, err)
			}
			fmt.Printf("%6d", res.Best.Cost())
			total += res.Best.Cost()
		}
		fmt.Printf("%8d\n", total)
	}

	fmt.Println(`
Reading the table like the paper's Sec. VI: dropping U3 and SUB-on-U1
(ArchitectureII) costs little on several blocks — the covering reroutes
work to the remaining units — while the single-issue machine pays the
full serialization price. Halving the register files forces spills and
extra instructions; widening the bus helps transfer-bound blocks. This
is the retargetable-compilation loop that lets a designer pick the
cheapest architecture that still meets the code-size budget.`)
}

// wideBus is the example architecture with a 2-transfer bus.
func wideBus() *isdl.Machine {
	m := isdl.ExampleArch(4).Clone("ExampleWideBus")
	m.Buses[0].Width = 2
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

// noMulU3 removes MUL from U3, leaving it an adder.
func noMulU3() *isdl.Machine {
	m := isdl.ExampleArch(4).Clone("NoMulU3")
	delete(m.Unit("U3").Ops, ir.OpMul)
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}
