// dspfir: the workload the paper's introduction motivates — DSP kernel
// code for an embedded VLIW. A FIR filter written in the mini-C front-end
// language is unrolled (the machine-independent transformation of
// Sec. II), compiled for the example architecture, simulated, and checked
// against a plain Go implementation. The example also shows what loop
// unrolling buys in cycles and costs in code size — exactly the
// trade-off a code-size-constrained embedded design cares about.
//
//	go run ./examples/dspfir
package main

import (
	"fmt"
	"log"

	"aviv"
	"aviv/internal/isdl"
	"aviv/internal/sim"
)

const taps = 8

// One output of an 8-tap FIR: y = sum_k c[k] * x[n-k], with the delay
// line laid out as x0..x7 and coefficients c0..c7 in data memory.
const firSrc = `
y = 0;
for (k = 0; k < 8; k = k + 1) {
  y = y + c * x;   # placeholder; the real kernel is generated below
}
`

func main() {
	machine := isdl.ExampleArchFull(4)

	// Generate the unrolled-friendly kernel source: the mini-C language
	// has scalar variables, so the delay line is expressed as x0..x7.
	src := "y = 0;\n"
	src += "for (k = 0; k < 1; k = k + 1) {\n" // wrapper loop for unroll demo below
	for i := 0; i < taps; i++ {
		src += fmt.Sprintf("  y = y + c%d * x%d;\n", i, i)
	}
	src += "}\n"

	mem := func() map[string]int64 {
		m := map[string]int64{}
		for i := 0; i < taps; i++ {
			m[fmt.Sprintf("x%d", i)] = int64(i + 1)
			m[fmt.Sprintf("c%d", i)] = int64(2*i + 1)
		}
		return m
	}

	// Reference result in plain Go.
	want := int64(0)
	ref := mem()
	for i := 0; i < taps; i++ {
		want += ref[fmt.Sprintf("x%d", i)] * ref[fmt.Sprintf("c%d", i)]
	}

	fmt.Printf("8-tap FIR on %s (code size vs cycles):\n\n", machine.Name)
	fmt.Printf("%-28s %10s %8s\n", "configuration", "code size", "cycles")
	for _, cfg := range []struct {
		name string
		opts aviv.Options
	}{
		{"heuristics on", aviv.DefaultOptions()},
		{"heuristics on, no peephole", func() aviv.Options { o := aviv.DefaultOptions(); o.Peephole = false; return o }()},
	} {
		res, err := aviv.CompileSource(src, machine, 1, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		final, cycles, err := sim.RunProgram(res.Program, mem(), 0)
		if err != nil {
			log.Fatal(err)
		}
		if final["y"] != want {
			log.Fatalf("%s: y = %d, want %d", cfg.name, final["y"], want)
		}
		fmt.Printf("%-28s %10d %8d\n", cfg.name, res.CodeSize(), cycles)
	}

	// Same kernel as a real 8-iteration loop over a single multiply, to
	// show loop unrolling extracting basic-block parallelism. (Scalar
	// memory only, so each iteration reads the same cell — the point is
	// the schedule, not the numerics.)
	loopSrc := `
y = 0;
for (k = 0; k < 8; k = k + 1) {
  y = y + c * x;
}
`
	fmt.Printf("\nLoop form, unrolled by different factors:\n\n")
	fmt.Printf("%8s %10s %8s %14s\n", "unroll", "code size", "cycles", "body instrs")
	for _, factor := range []int{1, 2, 4, 8} {
		res, err := aviv.CompileSource(loopSrc, machine, factor, aviv.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		lmem := map[string]int64{"c": 3, "x": 4}
		final, cycles, err := sim.RunProgram(res.Program, lmem, 0)
		if err != nil {
			log.Fatal(err)
		}
		if final["y"] != 8*3*4 {
			log.Fatalf("unroll %d: y = %d, want 96", factor, final["y"])
		}
		body := 0
		for _, br := range res.Blocks {
			if br.Solution.Cost() > body {
				body = br.Solution.Cost()
			}
		}
		fmt.Printf("%8d %10d %8d %14d\n", factor, res.CodeSize(), cycles, body)
	}
	fmt.Println("\nAs in the paper: unrolling trades code size for cycles by exposing")
	fmt.Println("basic-block parallelism that the Split-Node DAG covering exploits.")
	_ = firSrc
}
