package aviv_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"aviv"
	"aviv/internal/cover"
	"aviv/internal/diskcache"
	"aviv/internal/isdl"
	"aviv/internal/server"
)

// The test ships the textual ISDL equivalents of the two difftest
// corpus machines (isdl.ExampleArchFullISDL, isdl.SingleIssueDSPISDL)
// over the wire while compiling locally with the built-in constructors,
// so a mismatch in either the texts or the served pipeline breaks the
// byte-identity check.

// TestServerDifferentialCorpus is the compile-as-a-service byte-identity
// gate: the whole 50-program difftest corpus is compiled through an
// in-process avivd (two-tier cache enabled) by concurrent clients, twice
// per program, and every served assembly must equal the local
// aviv.CompileSource output for the same program and machine. Run under
// -race this also exercises single-flight, the worker pool, machine
// interning, and both cache tiers for data races.
func TestServerDifferentialCorpus(t *testing.T) {
	want := aviv.CorpusProgramText(t, aviv.DefaultOptions())

	disk, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{
		Options: aviv.Options{
			Cache:     cover.NewBoundedCache(256),
			DiskCache: disk,
		},
		QueueLimit: 256,
		// The delta engine is how avivd serves by default; running the
		// whole differential corpus through it makes this test the
		// byte-identity gate for the stitched path too.
		Delta: true,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const seeds = 50
	const waves = 2
	type job struct{ seed, wave int }
	jobs := make(chan job, seeds*waves)
	for wave := 0; wave < waves; wave++ {
		for seed := 0; seed < seeds; seed++ {
			jobs <- job{seed, wave}
		}
	}
	close(jobs)

	var (
		mu  sync.Mutex
		got [waves][seeds]string
	)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				bitwise := j.seed%2 == 1
				src, _ := aviv.GenProgram(int64(j.seed), bitwise)
				machine := isdl.ExampleArchFullISDL
				if bitwise {
					machine = isdl.SingleIssueDSPISDL
				}
				body, err := json.Marshal(server.CompileRequest{
					Source:  src,
					Machine: machine,
					Unroll:  1,
					Preset:  "default",
				})
				if err != nil {
					t.Errorf("seed %d: marshal: %v", j.seed, err)
					return
				}
				httpResp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("seed %d: post: %v", j.seed, err)
					return
				}
				var resp server.CompileResponse
				err = json.NewDecoder(httpResp.Body).Decode(&resp)
				httpResp.Body.Close()
				if err != nil {
					t.Errorf("seed %d: decode (HTTP %d): %v", j.seed, httpResp.StatusCode, err)
					return
				}
				if httpResp.StatusCode != http.StatusOK || resp.Error != "" {
					t.Errorf("seed %d: HTTP %d, error %q", j.seed, httpResp.StatusCode, resp.Error)
					return
				}
				mu.Lock()
				got[j.wave][j.seed] = resp.Assembly
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("served compiles failed; see errors above")
	}

	var all string
	for seed := 0; seed < seeds; seed++ {
		if got[0][seed] != got[1][seed] {
			t.Errorf("seed %d: wave 0 and wave 1 served different assembly", seed)
		}
		all += fmt.Sprintf("== seed %d ==\n%s\n", seed, got[0][seed])
	}
	if all != want {
		t.Fatalf("served corpus differs from local compilation (%d vs %d bytes)", len(all), len(want))
	}

	c := s.Counters().Snapshot()
	if c.Requests != seeds*waves || c.Completed == 0 {
		t.Fatalf("unexpected server counters: %+v", c)
	}
	ds := disk.Stats()
	if ds.Writes == 0 || ds.Corrupt != 0 {
		t.Fatalf("disk tier not exercised cleanly: %+v", ds)
	}
}
