package aviv

// Exports for the external (package aviv_test) differential tests: the
// server diff harness replays the same seeded corpus the in-package
// property tests use, so "byte-identical to a local compile" means
// identical to these exact programs.
var (
	GenProgram        = genProgram
	CorpusProgramText = corpusProgramText
)
