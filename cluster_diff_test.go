package aviv_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"aviv"
	"aviv/internal/cluster"
	"aviv/internal/cover"
	"aviv/internal/isdl"
	"aviv/internal/server"
)

// TestClusterDifferentialCorpus is the cluster byte-identity gate: the
// whole 50-program difftest corpus is compiled through a 3-node
// in-process cluster behind the consistent-hash router, by concurrent
// clients, twice per program — and then one node is killed mid-run and
// the corpus compiled again. Every served assembly, before and after
// the kill, must equal the local aviv.CompileSource output: routing,
// forwarding, cache peering, delta stitching, failover, and
// local fallback may change where and how fast a compile runs, never
// its bytes. Run under -race (the clustersmoke CI stage does) this is
// also the data-race gate for the whole cluster layer.
func TestClusterDifferentialCorpus(t *testing.T) {
	want := aviv.CorpusProgramText(t, aviv.DefaultOptions())

	lc, err := cluster.StartLocal(cluster.LocalConfig{
		N: 3,
		NodeConfig: func(i int) server.Config {
			return server.Config{
				Options: aviv.Options{
					Cache:       cover.NewBoundedCache(256),
					Parallelism: 1,
				},
				QueueLimit: 256,
				Delta:      true,
			}
		},
		// Reactive-only health: ejection happens on the first failed
		// forward, deterministically, not via a racing probe.
		ProbeInterval:    time.Hour,
		FailureThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	routerURL, err := lc.StartRouter()
	if err != nil {
		t.Fatal(err)
	}

	const seeds = 50
	requestFor := func(seed int) server.CompileRequest {
		bitwise := seed%2 == 1
		src, _ := aviv.GenProgram(int64(seed), bitwise)
		machine := isdl.ExampleArchFullISDL
		if bitwise {
			machine = isdl.SingleIssueDSPISDL
		}
		return server.CompileRequest{Source: src, Machine: machine, Unroll: 1, Preset: "default"}
	}

	runWave := func(label string) [seeds]string {
		jobs := make(chan int, seeds)
		for seed := 0; seed < seeds; seed++ {
			jobs <- seed
		}
		close(jobs)
		var (
			mu  sync.Mutex
			got [seeds]string
		)
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seed := range jobs {
					body, err := json.Marshal(requestFor(seed))
					if err != nil {
						t.Errorf("%s seed %d: marshal: %v", label, seed, err)
						return
					}
					httpResp, err := http.Post(routerURL+"/compile", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("%s seed %d: post: %v", label, seed, err)
						return
					}
					var resp server.CompileResponse
					err = json.NewDecoder(httpResp.Body).Decode(&resp)
					httpResp.Body.Close()
					if err != nil {
						t.Errorf("%s seed %d: decode (HTTP %d): %v", label, seed, httpResp.StatusCode, err)
						return
					}
					if httpResp.StatusCode != http.StatusOK || resp.Error != "" {
						t.Errorf("%s seed %d: HTTP %d, error %q", label, seed, httpResp.StatusCode, resp.Error)
						return
					}
					mu.Lock()
					got[seed] = resp.Assembly
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return got
	}

	check := func(label string, got [seeds]string) {
		t.Helper()
		var all string
		for seed := 0; seed < seeds; seed++ {
			all += fmt.Sprintf("== seed %d ==\n%s\n", seed, got[seed])
		}
		if all != want {
			t.Fatalf("%s: served corpus differs from local compilation (%d vs %d bytes)", label, len(all), len(want))
		}
	}

	check("cold", runWave("cold"))
	check("warm", runWave("warm"))

	// Count how many corpus keys the about-to-die node owns; with 50
	// keys over 3 nodes this is essentially always nonzero, and it is
	// what guarantees the kill actually exercises failover below.
	ring := cluster.NewRing(lc.URLs, 0)
	doomedOwned := 0
	for seed := 0; seed < seeds; seed++ {
		if ring.Owner(server.RequestKey(requestFor(seed)), nil) == lc.URLs[2] {
			doomedOwned++
		}
	}
	if doomedOwned == 0 {
		t.Skip("killed node owns no corpus keys; kill phase would prove nothing")
	}

	lc.KillNode(2)
	check("degraded", runWave("degraded"))

	// The dead node's keys were re-dispersed: the router failed over,
	// and at least one survivor hit the corpse once (counted, ejected)
	// before compiling locally.
	fallbacks := int64(0)
	for _, i := range []int{0, 1} {
		c := lc.Nodes[i].Server().Counters()
		fallbacks += c.LocalFallbacks.Load()
	}
	if fallbacks == 0 {
		t.Errorf("node killed while owning %d corpus keys, but no survivor recorded a local fallback", doomedOwned)
	}
}
