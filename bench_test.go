package aviv

import (
	"fmt"
	"testing"

	"aviv/internal/asm"
	"aviv/internal/baseline"
	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/regalloc"
	"aviv/internal/sim"
	"aviv/internal/sndag"
)

// ----- Table I: Ex1-Ex7 on the example architecture --------------------
//
// One benchmark per row. The reported metric is the covering time (the
// paper's "CPU Time" column); b.ReportMetric adds the code size so both
// table columns regenerate from one run:
//
//	go test -bench 'TableI' -benchmem

func benchCover(b *testing.B, w bench.Workload, m *isdl.Machine, opts cover.Options) {
	b.Helper()
	var cost int
	for i := 0; i < b.N; i++ {
		res, err := cover.CoverBlock(w.Block, m, opts)
		if err != nil {
			b.Fatal(err)
		}
		cost = res.Best.Cost()
	}
	b.ReportMetric(float64(cost), "instrs")
}

func BenchmarkTableI(b *testing.B) {
	rows := []struct {
		name string
		w    bench.Workload
		regs int
	}{
		{"Ex1", bench.Ex1(), 4},
		{"Ex2", bench.Ex2(), 4},
		{"Ex3", bench.Ex3(), 4},
		{"Ex4", bench.Ex4(), 4},
		{"Ex5", bench.Ex5(), 4},
		{"Ex6", bench.Ex4(), 2},
		{"Ex7", bench.Ex5(), 2},
	}
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) {
			benchCover(b, r.w, isdl.ExampleArch(r.regs), cover.DefaultOptions())
		})
	}
}

// The paper's parenthesised heuristics-off columns. Ex4/Ex5 explore tens
// of thousands of assignments; keep the cap modest so the bench is
// runnable (the paper's own exhaustive runs took CPU-days).
func BenchmarkTableIExhaustive(b *testing.B) {
	rows := []struct {
		name string
		w    bench.Workload
	}{
		{"Ex1", bench.Ex1()},
		{"Ex2", bench.Ex2()},
		{"Ex3", bench.Ex3()},
	}
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) {
			opts := cover.ExhaustiveOptions()
			opts.MaxAssignments = 20000
			benchCover(b, r.w, isdl.ExampleArch(4), opts)
		})
	}
}

// ----- Table II: Ex1-Ex5 on Architecture II ----------------------------

func BenchmarkTableII(b *testing.B) {
	for _, w := range bench.PaperWorkloads() {
		b.Run(w.Name, func(b *testing.B) {
			benchCover(b, w, isdl.ArchitectureII(4), cover.DefaultOptions())
		})
	}
}

// ----- Figure-level micro-benchmarks ------------------------------------

// Fig. 4: Split-Node DAG construction.
func BenchmarkSplitNodeDAGBuild(b *testing.B) {
	for _, w := range []bench.Workload{bench.Ex1(), bench.Ex5(), bench.FIR(16)} {
		b.Run(w.Name, func(b *testing.B) {
			m := isdl.ExampleArch(4)
			for i := 0; i < b.N; i++ {
				if _, err := sndag.Build(w.Block, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Fig. 8: maximal clique generation, the algorithm the paper calls "the
// most time consuming portion".
func BenchmarkMaxCliques(b *testing.B) {
	for _, n := range []int{8, 12, 16, 20} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			par := make([][]bool, n)
			for i := range par {
				par[i] = make([]bool, n)
			}
			// Deterministic ~50% density matrix.
			state := uint64(12345)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					state = state*6364136223846793005 + 1442695040888963407
					v := state>>33%2 == 0
					par[i][j], par[j][i] = v, v
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cover.GenMaxCliques(par)
			}
		})
	}
}

// ----- End-to-end pipeline and substrate benches ------------------------

func BenchmarkFullPipeline(b *testing.B) {
	for _, w := range []bench.Workload{bench.Ex1(), bench.Ex5(), bench.FIR(8)} {
		b.Run(w.Name, func(b *testing.B) {
			m := isdl.ExampleArch(4)
			f := singleBlockFunc(w.Block)
			for i := 0; i < b.N; i++ {
				if _, err := Compile(f, m, DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBaselineSequential(b *testing.B) {
	for _, w := range []bench.Workload{bench.Ex1(), bench.Ex5()} {
		b.Run(w.Name, func(b *testing.B) {
			m := isdl.ExampleArch(4)
			var cost int
			for i := 0; i < b.N; i++ {
				sol, err := baseline.Compile(w.Block, m)
				if err != nil {
					b.Fatal(err)
				}
				cost = sol.Cost()
			}
			b.ReportMetric(float64(cost), "instrs")
		})
	}
}

func BenchmarkRegalloc(b *testing.B) {
	w := bench.FIR(12)
	m := isdl.ExampleArch(4)
	res, err := cover.CoverBlock(w.Block, m, cover.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regalloc.Allocate(res.Best); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator(b *testing.B) {
	w := bench.FIR(8)
	m := isdl.ExampleArch(4)
	res, err := Compile(singleBlockFunc(w.Block), m, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunProgram(res.Program, w.Mem, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Scaling study: covering time and code size versus block size (the
// growth behaviour behind the paper's CPU-time column).
func BenchmarkScalingFIR(b *testing.B) {
	for _, taps := range []int{4, 8, 12, 16} {
		w := bench.FIR(taps)
		b.Run(fmt.Sprintf("taps%d", taps), func(b *testing.B) {
			m := isdl.ExampleArch(4)
			var cost int
			for i := 0; i < b.N; i++ {
				res, err := cover.CoverBlock(w.Block, m, cover.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Best.Cost()
			}
			b.ReportMetric(float64(cost), "instrs")
		})
	}
}

// ----- Ablation benches: the design choices DESIGN.md calls out ---------

func BenchmarkAblation(b *testing.B) {
	configs := []struct {
		name string
		mut  func(*cover.Options)
	}{
		{"default", func(o *cover.Options) {}},
		{"beam1", func(o *cover.Options) { o.BeamWidth = 1 }},
		{"noPrune", func(o *cover.Options) { o.PruneIncremental = false }},
		{"noLevelWindow", func(o *cover.Options) { o.LevelWindow = -1 }},
		{"noLookahead", func(o *cover.Options) { o.Lookahead = false }},
		{"firstPath", func(o *cover.Options) { o.TransferParallelismHeuristic = false }},
		{"spillAware", func(o *cover.Options) { o.SpillAwareAssignment = true }},
	}
	w := bench.Ex5()
	m := isdl.ExampleArch(4)
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			opts := cover.DefaultOptions()
			cfg.mut(&opts)
			benchCover(b, w, m, opts)
		})
	}
}

// ----- Assembler / encoding benches -------------------------------------

func BenchmarkEncodeObject(b *testing.B) {
	w := bench.FIR(8)
	m := isdl.ExampleArch(4)
	res, err := Compile(singleBlockFunc(w.Block), m, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asm.Encode(res.Program)
	}
}

func BenchmarkEncodeWords(b *testing.B) {
	w := bench.FIR(8)
	m := isdl.ExampleArch(4)
	res, err := Compile(singleBlockFunc(w.Block), m, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.EncodeWords(res.Program); err != nil {
			b.Fatal(err)
		}
	}
}

// ----- Front-end benches -------------------------------------------------

func BenchmarkFrontEnd(b *testing.B) {
	src := `
		s = 0;
		e = 0;
		for (i = 0; i < 16; i = i + 1) {
			s = s + x * i;
			if (i % 2) { e = e + s; } else { e = e - s; }
		}
		out = s + e;
	`
	for i := 0; i < b.N; i++ {
		if _, err := ParseAndLower(src, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// Latency study: the same block on single-cycle vs 3-cycle-multiplier
// machines (the NOP-padding cost of deep pipelines).
func BenchmarkLatencyMachines(b *testing.B) {
	mk := func(mulLat int) *isdl.Machine {
		m := isdl.ExampleArch(4)
		if mulLat > 1 {
			m.Unit("U2").SetLatency(ir.OpMul, mulLat)
			m.Unit("U3").SetLatency(ir.OpMul, mulLat)
			if err := m.Finalize(); err != nil {
				b.Fatal(err)
			}
		}
		return m
	}
	for _, lat := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("mulLat%d", lat), func(b *testing.B) {
			benchCover(b, bench.Ex5(), mk(lat), cover.DefaultOptions())
		})
	}
}
