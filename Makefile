# Convenience targets; `make check` is the gate ci.sh runs in CI.
.PHONY: check test build vet lint fuzz bench

check:
	./ci.sh

test:
	go test ./...

build:
	go build ./...

vet:
	go vet ./...

lint:
	for f in examples/machines/*.isdl; do go run ./cmd/isdldump -lint $$f; done
	go test -run 'TestMutation|TestLint' ./internal/verify

fuzz:
	go test -run '^$$' -fuzz='^FuzzCompileSource$$' -fuzztime=10s .

bench:
	go run ./cmd/avivbench -all
