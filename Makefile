# Convenience targets; `make check` is the gate ci.sh runs in CI.
.PHONY: check test build vet fuzz bench

check:
	./ci.sh

test:
	go test ./...

build:
	go build ./...

vet:
	go vet ./...

fuzz:
	go test -run '^$$' -fuzz='^FuzzCompileSource$$' -fuzztime=10s .

bench:
	go run ./cmd/avivbench -all
