# Convenience targets; `make check` is the gate ci.sh runs in CI.
.PHONY: check test build vet lint lintfix lintsmoke toolinstall staticcheck fuzz bench benchsmoke benchjson servesmoke servejson zoosmoke zoojson editsmoke editjson clustersmoke clusterjson

check:
	./ci.sh

test:
	go test ./...

build:
	go build ./...

vet:
	go vet ./...

# Pinned in ci.sh (STATICCHECK_VERSION); skipped with a warning when the
# binary is not on PATH — it is never downloaded by the build.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "warning: staticcheck not installed; skipping"; fi

lint:
	go run ./cmd/avivlint -list
	go run ./cmd/avivlint ./...
	for f in examples/machines/*.isdl; do go run ./cmd/isdldump -lint $$f; done
	go test -run 'TestMutation|TestLint' ./internal/verify

# Apply the mechanical rewrites the analyzer suite suggests (today:
# errctx's %v -> %w); findings without a fix are printed and still fail.
lintfix:
	go run ./cmd/avivlint -fix ./...

# The static-analysis gate exactly as ci.sh runs it: avivlint over the
# tree plus the analyzer golden tests and the archtest.
lintsmoke:
	go run ./cmd/avivlint ./...
	go run ./cmd/avivlint -run lockorder,goroutineleak,ctxflow ./...
	go test -run 'TestAnalyzerFixtureTable|TestErrCtxSuggestedFix|TestErrCtxFixIdempotent|TestSuiteIsSelfClean|TestLayer|TestCheckEdge|TestComponent|TestArchSuite|TestSuppressionBudget|TestCallGraph|TestProgramFactsAndMemo' -count=1 ./internal/analysis
	go test -count=1 ./cmd/avivlint
	go test -race -count=1 ./internal/analysis

# Install the external lint toolchain at the pinned versions ci.sh
# expects, and build avivlint (standard library only — no module
# downloads needed for it). Run this when preparing a CI image or a
# networked dev environment; the gate itself never downloads tools.
toolinstall:
	go install honnef.co/go/tools/cmd/staticcheck@2024.1
	go build -o bin/avivlint ./cmd/avivlint

fuzz:
	go test -run '^$$' -fuzz='^FuzzCompileSource$$' -fuzztime=10s .

bench:
	go run ./cmd/avivbench -all

# One iteration of every Go benchmark — catches bit-rot without the
# cost of a real measurement run (also part of ci.sh).
benchsmoke:
	go test -run '^$$' -bench . -benchtime=1x ./...

# Regenerate the machine-readable compile-benchmark report.
benchjson:
	go run ./cmd/avivbench -benchjson BENCH_cover.json

# Quick compile-server study on a small workload — catches bit-rot in
# the avivd path (also part of ci.sh).
servesmoke:
	go run ./cmd/avivbench -serve -serveprograms 2 -serveops 4

# Regenerate the machine-readable compile-server report.
servejson:
	go run ./cmd/avivbench -servejson BENCH_serve.json

# Race-enabled smoke over a small machine zoo: every class generated,
# linted, compiled, and differentially checked (also part of ci.sh).
zoosmoke:
	go test -race -run '^TestZooSmoke$$' -count=1 .

# Regenerate the machine-readable per-machine-class zoo bench matrix.
zoojson:
	go run ./cmd/avivbench -zoojson BENCH_zoo.json

# Race-enabled short subset of the incremental-compilation differential
# suite: delta-path output byte-identical to from-scratch compiles over
# an edit stream (also part of ci.sh).
editsmoke:
	go test -race -short -run '^TestEditDifferentialCorpus$$' -count=1 .

# Regenerate the machine-readable incremental-compilation report.
editjson:
	go run ./cmd/avivbench -editjson BENCH_edit.json

# Race-enabled cluster differential: the corpus through a 3-node
# in-process cluster behind the router, concurrent clients, one node
# killed mid-run (also part of ci.sh).
clustersmoke:
	go test -race -run '^TestClusterDifferentialCorpus$$' -count=1 .

# Regenerate the machine-readable compile-cluster report (capacity
# scaling at N=1,2,4,8, cluster-wide dedup, kill-one-node).
clusterjson:
	go run ./cmd/avivbench -clusterjson BENCH_cluster.json
