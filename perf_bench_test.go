package aviv

import (
	"testing"

	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/isdl"
)

// BenchmarkCompileMultiBlock is the headline perf benchmark of the
// covering-engine fast path: a 24-block function of 16-op DAG blocks
// compiled end to end, serially, so per-block covering dominates. The
// cache sub-benchmark reuses one compile cache across iterations, which
// models recompiling unchanged blocks (the BENCH_cover.json trajectory
// tracks both).
func BenchmarkCompileMultiBlock(b *testing.B) {
	f, _ := bench.MultiBlock(1, 24, 16)
	m := isdl.ExampleArchFull(4)
	b.Run("nocache", func(b *testing.B) {
		opts := DefaultOptions()
		opts.Parallelism = 1
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compile(f, m, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache", func(b *testing.B) {
		opts := DefaultOptions()
		opts.Parallelism = 1
		opts.Cache = cover.NewCache()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compile(f, m, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
