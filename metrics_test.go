package aviv

import (
	"strings"
	"testing"

	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/isdl"
)

// TestMetricsSearchCounters sanity-checks the fast-path counters fed to
// the -stats report: the branch-and-bound and memo counts are
// deterministic across identical compiles, cache hits appear only with
// a warm cache (and then on every block), and the report prints them.
func TestMetricsSearchCounters(t *testing.T) {
	f, _ := bench.MultiBlock(1, 6, 12)
	m := isdl.ExampleArchFull(4)
	opts := DefaultOptions()
	opts.Parallelism = 1

	r1, err := Compile(f, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile(f, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.TotalPrunedAssignments() != r2.Metrics.TotalPrunedAssignments() {
		t.Fatalf("pruned-assignment count not deterministic: %d vs %d",
			r1.Metrics.TotalPrunedAssignments(), r2.Metrics.TotalPrunedAssignments())
	}
	if r1.Metrics.TotalMemoHits() != r2.Metrics.TotalMemoHits() {
		t.Fatalf("memo-hit count not deterministic: %d vs %d",
			r1.Metrics.TotalMemoHits(), r2.Metrics.TotalMemoHits())
	}
	if r1.Metrics.CacheHits() != 0 {
		t.Fatalf("cache hits without a cache: %d", r1.Metrics.CacheHits())
	}
	if r1.Metrics.TotalPrunedAssignments() < 0 || r1.Metrics.TotalMemoHits() < 0 {
		t.Fatal("negative search counters")
	}

	cached := opts
	cached.Cache = cover.NewCache()
	if _, err := Compile(f, m, cached); err != nil {
		t.Fatal(err)
	}
	warm, err := Compile(f, m, cached)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := warm.Metrics.CacheHits(), len(warm.Metrics.Blocks); got != want {
		t.Fatalf("warm compile hit %d/%d blocks", got, want)
	}

	report := warm.Metrics.String()
	if !strings.Contains(report, "search:") ||
		!strings.Contains(report, "pruned by lower bound") ||
		!strings.Contains(report, "blocks from compile cache") {
		t.Fatalf("-stats report lacks the search counters:\n%s", report)
	}
}
