module aviv

go 1.22
