package aviv

import (
	"strings"
	"testing"

	"aviv/internal/asm"
	"aviv/internal/bench"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/lang"
	"aviv/internal/sim"
)

// runSource compiles mini-C source and simulates it, comparing against
// the front end's own reference evaluation.
func runSource(t *testing.T, src string, m *isdl.Machine, unroll int, mem map[string]int64) (map[string]int64, int) {
	t.Helper()
	res, err := CompileSource(src, m, unroll, DefaultOptions())
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	f, err := ParseAndLower(src, unroll)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for k, v := range mem {
		want[k] = v
	}
	if err := ir.EvalFunc(f, want, 0); err != nil {
		t.Fatal(err)
	}
	got, cycles, err := sim.RunProgram(res.Program, mem, 0)
	if err != nil {
		t.Fatalf("simulate: %v\n%s", err, res.Program)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("mem[%s] = %d, want %d\n%s", k, got[k], v, res.Program)
		}
	}
	return got, cycles
}

func TestSourceToSimulationPrograms(t *testing.T) {
	m := isdl.ExampleArchFull(4)
	cases := []struct {
		name   string
		src    string
		unroll int
		mem    map[string]int64
		check  func(map[string]int64) bool
	}{
		{
			name: "gcd-by-subtraction",
			src: `
				while (a != b) {
					if (a > b) { a = a - b; } else { b = b - a; }
				}
				g = a;
			`,
			mem:   map[string]int64{"a": 48, "b": 36},
			check: func(mem map[string]int64) bool { return mem["g"] == 12 },
		},
		{
			name: "polynomial-horner",
			src: `
				y = 0;
				y = y * x + 2;
				y = y * x + 3;
				y = y * x + 5;
			`,
			mem:   map[string]int64{"x": 10},
			check: func(mem map[string]int64) bool { return mem["y"] == 235 },
		},
		{
			name: "unrolled-sum-of-squares",
			src: `
				s = 0;
				for (i = 0; i < 12; i = i + 1) {
					s = s + i * i;
				}
			`,
			unroll: 4,
			check:  func(mem map[string]int64) bool { return mem["s"] == 506 },
		},
		{
			name: "nested-branches",
			src: `
				if (x > 0) {
					if (x > 100) { c = 2; } else { c = 1; }
				} else {
					c = 0;
				}
			`,
			mem:   map[string]int64{"x": 50},
			check: func(mem map[string]int64) bool { return mem["c"] == 1 },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, _ := runSource(t, c.src, m, c.unroll, c.mem)
			if !c.check(got) {
				t.Errorf("result check failed: %v", got)
			}
		})
	}
}

func TestMACEndToEnd(t *testing.T) {
	// The complex-instruction path, through emission and simulation: the
	// WideDSP's MAC must appear in the assembly and compute correctly.
	bb := ir.NewBuilder("mac")
	acc := bb.Load("acc")
	sum := bb.Add(acc, bb.Mul(bb.Load("x"), bb.Load("y")))
	bb.Store("acc", sum)
	bb.Return()
	f := singleBlockFunc(bb.Finish())

	m := isdl.WideDSP(8)
	res, err := Compile(f, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := res.Program.String()
	if !strings.Contains(text, "MAC") {
		t.Errorf("assembly does not use MAC:\n%s", text)
	}
	mem, _, err := sim.RunProgram(res.Program, map[string]int64{"acc": 100, "x": 6, "y": 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mem["acc"] != 142 {
		t.Errorf("acc = %d, want 142", mem["acc"])
	}
}

func TestSerialFallbackEndToEnd(t *testing.T) {
	// A machine so register-starved that the clique coverer fails; the
	// serial fallback must still produce correct code.
	m := isdl.NewMachine("Tiny")
	m.AddUnit("U1", 2, ir.OpAdd, ir.OpSub, ir.OpMul)
	m.AddMemory("DM")
	m.AddBus("B", 1)
	m.ConnectAll("B")
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Heavy value reuse forces pressure on the single 2-register bank.
	bb := ir.NewBuilder("tight")
	a := bb.Load("a")
	b := bb.Load("b")
	s1 := bb.Add(a, b)
	s2 := bb.Mul(s1, a)
	s3 := bb.Sub(s2, b)
	s4 := bb.Add(s3, s1)
	bb.Store("o", bb.Mul(s4, s2))
	bb.Return()
	f := singleBlockFunc(bb.Finish())

	res, err := Compile(f, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mem := map[string]int64{"a": 3, "b": 4}
	want := map[string]int64{"a": 3, "b": 4}
	if err := ir.EvalFunc(f, want, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := sim.RunProgram(res.Program, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got["o"] != want["o"] {
		t.Errorf("o = %d, want %d", got["o"], want["o"])
	}
}

func TestAssemblerTextRoundTripWholeProgram(t *testing.T) {
	m := isdl.ExampleArchFull(4)
	src := `
		s = 0;
		for (i = 0; i < 4; i = i + 1) { s = s + x; }
	`
	res, err := CompileSource(src, m, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := res.Program.String()
	back, err := asm.ParseProgram(text, m)
	if err != nil {
		t.Fatalf("ParseProgram of emitted assembly: %v\n%s", err, text)
	}
	mem1, _, err := sim.RunProgram(res.Program, map[string]int64{"x": 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem2, _, err := sim.RunProgram(back, map[string]int64{"x": 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mem1["s"] != mem2["s"] || mem1["s"] != 36 {
		t.Errorf("s: direct %d vs reassembled %d, want 36", mem1["s"], mem2["s"])
	}
}

func TestPaperWorkloadsSimulateOnAllMachines(t *testing.T) {
	machines := []*isdl.Machine{
		isdl.ExampleArch(4), isdl.ExampleArch(2),
		isdl.ArchitectureII(4), isdl.WideDSP(4), isdl.SingleIssueDSP(4),
	}
	for _, w := range bench.PaperWorkloads() {
		want := map[string]int64{}
		for k, v := range w.Mem {
			want[k] = v
		}
		if _, err := ir.EvalBlock(w.Block, want); err != nil {
			t.Fatal(err)
		}
		for _, m := range machines {
			res, err := Compile(singleBlockFunc(w.Block), m, DefaultOptions())
			if err != nil {
				t.Fatalf("%s on %s: %v", w.Name, m.Name, err)
			}
			got, _, err := sim.RunProgram(res.Program, w.Mem, 0)
			if err != nil {
				t.Fatalf("%s on %s: %v", w.Name, m.Name, err)
			}
			for k, v := range want {
				if got[k] != v {
					t.Errorf("%s on %s: mem[%s] = %d, want %d", w.Name, m.Name, k, got[k], v)
				}
			}
		}
	}
}

func TestUnrollShrinksCyclesGrowsCode(t *testing.T) {
	m := isdl.ExampleArchFull(4)
	src := `
		s = 0;
		for (i = 0; i < 8; i = i + 1) { s = s + x * i; }
	`
	var prevCycles = 1 << 30
	var sizes []int
	for _, factor := range []int{1, 4} {
		res, err := CompileSource(src, m, factor, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		_, cycles, err := sim.RunProgram(res.Program, map[string]int64{"x": 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cycles >= prevCycles {
			t.Errorf("unroll %d: cycles %d did not improve on %d", factor, cycles, prevCycles)
		}
		prevCycles = cycles
		sizes = append(sizes, res.CodeSize())
	}
	if sizes[1] <= sizes[0] {
		t.Errorf("unrolling did not grow code size: %v", sizes)
	}
}

func TestLangOptIntegration(t *testing.T) {
	// Constant-heavy source folds down to almost nothing.
	src := `
		a = 2 + 3 * 4;
		if (a == 14) { r = a * 2; } else { r = 0; }
	`
	f, err := ParseAndLower(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Branch folding + unreachable removal leave a single block.
	if len(f.Blocks) > 2 {
		t.Errorf("constant program kept %d blocks", len(f.Blocks))
	}
	got, _ := runSource(t, src, isdl.ExampleArchFull(4), 1, nil)
	if got["r"] != 28 {
		t.Errorf("r = %d, want 28", got["r"])
	}
	_ = lang.Program{} // keep lang imported for documentation parity
}

func TestBlockLayoutSavesJumps(t *testing.T) {
	m := isdl.ExampleArchFull(4)
	src := `
		if (x > 0) { r = 1; } else { r = 2; }
		s = r + 1;
	`
	res, err := CompileSource(src, m, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At most one JMP should survive layout for a diamond (one arm falls
	// through to the join, the other needs a jump).
	jumps := 0
	for _, b := range res.Program.Blocks {
		if b.Branch.Kind == asm.BranchJump {
			jumps++
		}
	}
	if jumps > 1 {
		t.Errorf("%d jumps survived block layout, want <= 1\n%s", jumps, res.Program)
	}
	// Semantics preserved on both paths.
	for _, x := range []int64{5, -5} {
		got, _, err := sim.RunProgram(res.Program, map[string]int64{"x": x}, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(2)
		if x > 0 {
			want = 1
		}
		if got["r"] != want || got["s"] != want+1 {
			t.Errorf("x=%d: r=%d s=%d, want r=%d", x, got["r"], got["s"], want)
		}
	}
}

func TestPipelinedMachineEndToEnd(t *testing.T) {
	// A 3-cycle multiplier: code must pad or fill latency shadows, and
	// the no-interlock simulator (delayed write commit) catches any
	// violation as a wrong result.
	m := isdl.ExampleArchFull(4)
	m.Unit("U2").SetLatency(ir.OpMul, 3)
	m.Unit("U3").SetLatency(ir.OpMul, 3)
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	src := `
		acc = 0;
		for (i = 1; i < 6; i = i + 1) {
			acc = acc + i * i * x;
		}
		out = acc * 2;
	`
	got, _ := runSource(t, src, m, 1, map[string]int64{"x": 3})
	if got["out"] != 2*3*(1+4+9+16+25) {
		t.Errorf("out = %d, want 330", got["out"])
	}
}

func TestPipelinedBranchCondition(t *testing.T) {
	// The branch condition itself comes from a multi-cycle op: the block
	// must drain the latency before branching.
	m := isdl.ExampleArchFull(4)
	for _, op := range []ir.Op{ir.OpCmpLT, ir.OpCmpGT, ir.OpCmpNE, ir.OpCmpEQ} {
		m.Unit("U1").SetLatency(op, 2)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	src := `
		n = 0;
		while (x > 0) {
			x = x - 3;
			n = n + 1;
		}
	`
	got, _ := runSource(t, src, m, 1, map[string]int64{"x": 10})
	if got["n"] != 4 {
		t.Errorf("n = %d, want 4", got["n"])
	}
}

func TestLatencyISDLSource(t *testing.T) {
	// Latency annotations parse from text and shape the code.
	machineSrc := `
machine PipeDSP
unit ALU { regs 4 ops ADD SUB CMPLT CMPNE }
unit MPY { regs 4 ops MUL:4 ADD }
memory DM
bus B width 1
connect all via B
`
	m, err := LoadMachine(machineSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Unit("MPY").LatencyOf(ir.OpMul); got != 4 {
		t.Fatalf("parsed MUL latency = %d, want 4", got)
	}
	if got := m.Unit("MPY").LatencyOf(ir.OpAdd); got != 1 {
		t.Fatalf("parsed ADD latency = %d, want 1", got)
	}
	got, _ := runSource(t, `p = a * b; q = p * p; r = q - a;`, m, 1,
		map[string]int64{"a": 3, "b": 5})
	if got["r"] != 15*15-3 {
		t.Errorf("r = %d, want 222", got["r"])
	}
}

func TestBreakContinueEndToEnd(t *testing.T) {
	src := `
		s = 0;
		for (i = 0; i < 50; i = i + 1) {
			if (i == 7) { break; }
			if (i % 2 == 0) { continue; }
			s = s + i;
		}
		r = s * 10 + i;
	`
	// SingleIssueDSP carries the full op repertoire (MOD included).
	got, _ := runSource(t, src, isdl.SingleIssueDSP(4), 1, nil)
	if got["r"] != (1+3+5)*10+7 {
		t.Errorf("r = %d, want 97", got["r"])
	}
}

func TestDualMemoryEndToEnd(t *testing.T) {
	// X/Y banked machine: correct results and smaller code with a good
	// placement, through the full pipeline and simulator.
	bb := ir.NewBuilder("dot4")
	var acc *ir.Node
	mem := map[string]int64{}
	for i := 0; i < 4; i++ {
		x := "x" + string(rune('0'+i))
		c := "c" + string(rune('0'+i))
		mem[x], mem[c] = int64(i+1), int64(i+2)
		term := bb.Mul(bb.Load(x), bb.Load(c))
		if acc == nil {
			acc = term
		} else {
			acc = bb.Add(acc, term)
		}
	}
	bb.Store("y", acc)
	bb.Return()
	f := singleBlockFunc(bb.Finish())

	m := isdl.DualMemDSP(4)
	opts := DefaultOptions()
	opts.Cover.VarPlacement = map[string]string{
		"x0": "XM", "x1": "XM", "x2": "XM", "x3": "XM",
		"c0": "YM", "c1": "YM", "c2": "YM", "c3": "YM",
	}
	res, err := Compile(f, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sim.RunProgram(res.Program, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1*2 + 2*3 + 3*4 + 4*5)
	if got["y"] != want {
		t.Errorf("y = %d, want %d", got["y"], want)
	}
	// Placement must beat the single-bank layout (auto-placement off).
	noPlace := DefaultOptions()
	noPlace.AutoPlace = false
	base, err := Compile(f, m, noPlace)
	if err != nil {
		t.Fatal(err)
	}
	if res.CodeSize() >= base.CodeSize() {
		t.Errorf("placed code %d !< unplaced %d", res.CodeSize(), base.CodeSize())
	}
}

func TestAutoPlaceInCompile(t *testing.T) {
	// DefaultOptions auto-places on dual-memory machines: the dot kernel
	// should get the banked layout without any explicit placement.
	bb := ir.NewBuilder("dot")
	var acc *ir.Node
	mem := map[string]int64{}
	for i := 0; i < 4; i++ {
		x, c := "x"+string(rune('0'+i)), "c"+string(rune('0'+i))
		mem[x], mem[c] = int64(i+1), int64(i+2)
		term := bb.Mul(bb.Load(x), bb.Load(c))
		if acc == nil {
			acc = term
		} else {
			acc = bb.Add(acc, term)
		}
	}
	bb.Store("y", acc)
	bb.Return()
	f := singleBlockFunc(bb.Finish())
	m := isdl.DualMemDSP(4)

	auto, err := Compile(f, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noAuto := DefaultOptions()
	noAuto.AutoPlace = false
	plain, err := Compile(f, m, noAuto)
	if err != nil {
		t.Fatal(err)
	}
	if auto.CodeSize() >= plain.CodeSize() {
		t.Errorf("auto-placed code %d !< unplaced %d", auto.CodeSize(), plain.CodeSize())
	}
	got, _, err := sim.RunProgram(auto.Program, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got["y"] != 1*2+2*3+3*4+4*5 {
		t.Errorf("y = %d", got["y"])
	}
}

func TestClusteredVLIWEndToEnd(t *testing.T) {
	// Shared register banks through the whole pipeline: compile,
	// assemble, simulate, verify — plus correct results across clusters.
	m := isdl.ClusteredVLIW(4)
	bb := ir.NewBuilder("cl")
	sum := bb.Add(bb.Load("a"), bb.Load("b"))
	neg := bb.Op(ir.OpCompl, bb.Load("c")) // A1 only (cluster 1)
	bb.Store("o", bb.Mul(sum, neg))
	bb.Store("p", bb.Sub(sum, bb.Load("d")))
	bb.Return()
	f := singleBlockFunc(bb.Finish())

	res, err := Compile(f, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Binary object round trip on a banked machine.
	obj := asm.Encode(res.Program)
	loaded, err := asm.Decode(obj, m)
	if err != nil {
		t.Fatal(err)
	}
	mem := map[string]int64{"a": 3, "b": 4, "c": 5, "d": 1}
	got, _, err := sim.RunProgram(loaded, mem, 0)
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Program)
	}
	if got["o"] != 7*(^int64(5)) || got["p"] != 6 {
		t.Errorf("o=%d p=%d, want %d and 6\n%s", got["o"], got["p"], 7*(^int64(5)), res.Program)
	}
	// Assembly text mentions bank names, and re-parses.
	text := res.Program.String()
	if !strings.Contains(text, "C0.R") && !strings.Contains(text, "C1.R") {
		t.Errorf("assembly does not use bank registers:\n%s", text)
	}
	if _, err := asm.ParseProgram(text, m); err != nil {
		t.Errorf("emitted clustered assembly does not re-parse: %v\n%s", err, text)
	}
}
