package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"aviv"
	"aviv/internal/bench"
	"aviv/internal/cluster"
	"aviv/internal/isdl"
	"aviv/internal/server"
)

// clusterScalingModel documents what the scaling study actually
// measures, so the numbers cannot be mistaken for multi-core compute
// scaling. It ships inside BENCH_cluster.json.
const clusterScalingModel = "aggregate cache capacity on a shared single-CPU host: every node " +
	"holds the same fixed per-node cache budget (delta entries + entry-store entries), the " +
	"working set is ~3x one node's budget, and requests shard by content key. One node thrashes " +
	"its tiers and recompiles; four nodes fit the working set in aggregate and stitch from cache. " +
	"The speedup is cache aggregation via consistent-hash sharding, not parallel compute."

// clusterNodeStats is one node's slice of a measured pass: request
// latencies attributed to the key's owning node, plus the node's cache
// and peering counters — the cache-hit topology of the fleet.
type clusterNodeStats struct {
	Node           string  `json:"node"`
	Requests       int64   `json:"requests"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	Stitched       int64   `json:"blocks_stitched"`
	Recompiled     int64   `json:"blocks_recompiled"`
	PeerHits       int64   `json:"peer_hits"`
	PeerMisses     int64   `json:"peer_misses"`
	PeerPushes     int64   `json:"peer_pushes"`
	Forwarded      int64   `json:"forwarded"`
	LocalFallbacks int64   `json:"local_fallbacks"`
}

// clusterScalingRow is one fleet size in the capacity-scaling study.
type clusterScalingRow struct {
	Nodes        int                `json:"nodes"`
	Warmup       servePhase         `json:"warmup"`
	Warm         servePhase         `json:"warm"`
	WarmVsSingle float64            `json:"warm_vs_single_node"`
	Efficiency   float64            `json:"linear_scaling_efficiency"`
	PerNode      []clusterNodeStats `json:"per_node"`
}

// clusterDedup is the cold duplicate-storm phase: many clients ask for
// few distinct programs and the owning shards' single-flight groups
// must collapse them to ~one compile per distinct key.
type clusterDedup struct {
	DistinctKeys     int     `json:"distinct_keys"`
	Requests         int     `json:"requests"`
	ExecutedCompiles int64   `json:"executed_compiles"`
	CompilesPerKey   float64 `json:"recompiled_blocks_per_distinct_block"`
	DedupRate        float64 `json:"dedup_rate"`
}

// clusterKill is the fault phase: one node of a warm fleet dies and
// the survivors absorb its keys without a single failed request.
type clusterKill struct {
	KilledNode     string  `json:"killed_node"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	ForwardErrors  int64   `json:"forward_errors"`
	LocalFallbacks int64   `json:"local_fallbacks"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	ThroughputRPS  float64 `json:"throughput_rps"`
}

// clusterReport is the machine-readable -clusterjson output
// (BENCH_cluster.json).
type clusterReport struct {
	Benchmark           string              `json:"benchmark"`
	Programs            int                 `json:"programs"`
	BlocksPerProg       int                 `json:"blocks_per_program"`
	OpsPerBlock         int                 `json:"ops_per_block"`
	PerNodeCapacity     int                 `json:"per_node_capacity_entries"`
	WorkingSetArtifacts int                 `json:"working_set_artifacts"`
	ScalingModel        string              `json:"scaling_model"`
	LocalColdMsPer      float64             `json:"local_cold_ms_per_compile"`
	Scaling             []clusterScalingRow `json:"scaling"`
	Dedup               clusterDedup        `json:"dedup"`
	Kill                clusterKill         `json:"kill"`
}

// clusterStudy measures the compile cluster end to end: capacity
// scaling at N=1,2,4,8 over a working set ~3x one node's cache budget,
// a cold duplicate storm proving cluster-wide single-flight, and a
// kill-one-node pass proving availability. Every served assembly in
// every phase is checked byte-identical to a local compile before any
// number is reported. With jsonPath non-empty the report is written as
// JSON (BENCH_cluster.json).
func clusterStudy(jsonPath string, nPrograms, opsPerBlock, capacity int) error {
	const nBlocks = 6
	const clients = 8
	if nPrograms < 8 {
		nPrograms = 8
	}
	if opsPerBlock < 1 {
		opsPerBlock = 1
	}
	machine, err := isdl.Parse(isdl.ExampleArchFullISDL)
	if err != nil {
		return err
	}
	sources := make([]string, nPrograms)
	for i := range sources {
		sources[i] = bench.MultiBlockSource(int64(i+1), nBlocks, opsPerBlock)
	}

	// Local cold baseline, and the byte-identity references.
	local := make([]string, nPrograms)
	blocksPer := 0
	localStart := time.Now()
	for i, src := range sources {
		res, err := aviv.CompileSource(src, machine, 1, aviv.DefaultOptions())
		if err != nil {
			return fmt.Errorf("local compile %d: %w", i, err)
		}
		local[i] = res.Program.String()
		blocksPer = len(res.Blocks)
	}
	localMsPer := float64(time.Since(localStart).Milliseconds()) / float64(nPrograms)
	workingSet := nPrograms * blocksPer
	if capacity <= 0 {
		// Default: one node holds a third of the working set, so a
		// single node thrashes while four nodes fit it comfortably.
		capacity = workingSet / 3
	}

	requests := make([]server.CompileRequest, nPrograms)
	for i, src := range sources {
		requests[i] = server.CompileRequest{Source: src, Machine: isdl.ExampleArchFullISDL, Unroll: 1, Preset: "default"}
	}

	startFleet := func(n int) (*cluster.LocalCluster, string, error) {
		lc, err := cluster.StartLocal(cluster.LocalConfig{
			N: n,
			NodeConfig: func(i int) server.Config {
				return server.Config{
					Options: aviv.Options{
						// No cover cache: the delta engine's artifact
						// tiers are the only caches, so `capacity` is
						// the single per-node budget knob.
						DiskCache:   cluster.NewMemStore(capacity),
						Parallelism: 1,
					},
					QueueLimit:   1024,
					Timeout:      120 * time.Second,
					Delta:        true,
					DeltaEntries: capacity,
				}
			},
			ProbeInterval:    time.Hour, // reactive-only health: deterministic
			FailureThreshold: 1,
		})
		if err != nil {
			return nil, "", err
		}
		routerURL, err := lc.StartRouter()
		if err != nil {
			lc.Close()
			return nil, "", err
		}
		return lc, routerURL, nil
	}

	// wave pushes every request once through the router with `clients`
	// concurrent workers, verifying byte identity, and returns overall
	// latencies, per-owner latencies, wall time, and the error count
	// (transport/status errors; byte mismatches abort).
	ring := func(lc *cluster.LocalCluster) *cluster.Ring { return cluster.NewRing(lc.URLs, 0) }
	wave := func(routerURL string, rg *cluster.Ring) ([]time.Duration, map[string][]time.Duration, time.Duration, int, error) {
		jobs := make(chan int, nPrograms)
		for i := 0; i < nPrograms; i++ {
			jobs <- i
		}
		close(jobs)
		var (
			mu      sync.Mutex
			lat     []time.Duration
			byOwner = make(map[string][]time.Duration)
			errorsN int
			fatal   error
		)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					body, err := json.Marshal(requests[i])
					if err != nil {
						mu.Lock()
						fatal = err
						mu.Unlock()
						return
					}
					owner := rg.Owner(server.RequestKey(requests[i]), nil)
					t0 := time.Now()
					httpResp, err := http.Post(routerURL+"/compile", "application/json", bytes.NewReader(body))
					if err != nil {
						mu.Lock()
						errorsN++
						mu.Unlock()
						continue
					}
					var resp server.CompileResponse
					err = json.NewDecoder(httpResp.Body).Decode(&resp)
					httpResp.Body.Close()
					d := time.Since(t0)
					if err != nil || httpResp.StatusCode != http.StatusOK || resp.Error != "" {
						mu.Lock()
						errorsN++
						mu.Unlock()
						continue
					}
					if resp.Assembly != local[i] {
						mu.Lock()
						fatal = fmt.Errorf("program %d: served assembly differs from local compile", i)
						mu.Unlock()
						return
					}
					mu.Lock()
					lat = append(lat, d)
					byOwner[owner] = append(byOwner[owner], d)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		if fatal != nil {
			return nil, nil, 0, 0, fatal
		}
		return lat, byOwner, wall, errorsN, nil
	}

	phase := func(name string, lat []time.Duration, wall time.Duration) servePhase {
		return servePhase{
			Name:          name,
			Requests:      len(lat),
			P50Ms:         percentileMs(lat, 0.50),
			P95Ms:         percentileMs(lat, 0.95),
			ThroughputRPS: float64(len(lat)) / wall.Seconds(),
		}
	}
	nodeStats := func(lc *cluster.LocalCluster, byOwner map[string][]time.Duration) []clusterNodeStats {
		out := make([]clusterNodeStats, len(lc.Nodes))
		for i, node := range lc.Nodes {
			c := node.Server().Counters()
			out[i] = clusterNodeStats{
				Node:           node.Self(),
				Requests:       c.Requests.Load(),
				P50Ms:          percentileMs(byOwner[node.Self()], 0.50),
				P95Ms:          percentileMs(byOwner[node.Self()], 0.95),
				Stitched:       c.BlocksStitched.Load(),
				Recompiled:     c.BlocksRecompiled.Load(),
				PeerHits:       c.PeerHits.Load(),
				PeerMisses:     c.PeerMisses.Load(),
				PeerPushes:     0, // only in /stats; filled below when needed
				Forwarded:      c.Forwarded.Load(),
				LocalFallbacks: c.LocalFallbacks.Load(),
			}
			// The push counter lives in the cluster section; read it over
			// the wire so the endpoint is exercised too.
			var stats server.StatsResponse
			if resp, err := http.Get(node.Self() + "/stats"); err == nil {
				err = json.NewDecoder(resp.Body).Decode(&stats)
				resp.Body.Close()
				if err == nil && stats.Cluster != nil {
					out[i].PeerPushes = stats.Cluster.PeerPushes
				}
			}
		}
		return out
	}

	fmt.Printf("==== Compile cluster study (%d programs x %d blocks x %d ops, cap %d entries/node) ====\n",
		nPrograms, blocksPer, opsPerBlock, capacity)
	fmt.Printf("local cold: %.2f ms/compile; working set %d artifacts (~%.1fx one node's budget)\n",
		localMsPer, workingSet, float64(workingSet)/float64(capacity))

	report := clusterReport{
		Benchmark:           "ClusterMultiBlock",
		Programs:            nPrograms,
		BlocksPerProg:       blocksPer,
		OpsPerBlock:         opsPerBlock,
		PerNodeCapacity:     capacity,
		WorkingSetArtifacts: workingSet,
		ScalingModel:        clusterScalingModel,
		LocalColdMsPer:      localMsPer,
	}

	// Phase 1: capacity scaling.
	singleWarmRPS := 0.0
	for _, n := range []int{1, 2, 4, 8} {
		lc, routerURL, err := startFleet(n)
		if err != nil {
			return err
		}
		rg := ring(lc)
		wlat, _, wwall, werrs, err := wave(routerURL, rg)
		if err != nil {
			lc.Close()
			return err
		}
		mlat, byOwner, mwall, merrs, err := wave(routerURL, rg)
		if err != nil {
			lc.Close()
			return err
		}
		if werrs+merrs != 0 {
			lc.Close()
			return fmt.Errorf("N=%d: %d request errors in a healthy fleet", n, werrs+merrs)
		}
		row := clusterScalingRow{
			Nodes:   n,
			Warmup:  phase("warmup", wlat, wwall),
			Warm:    phase("warm", mlat, mwall),
			PerNode: nodeStats(lc, byOwner),
		}
		if n == 1 {
			singleWarmRPS = row.Warm.ThroughputRPS
		}
		row.WarmVsSingle = row.Warm.ThroughputRPS / singleWarmRPS
		row.Efficiency = row.WarmVsSingle / float64(n)
		report.Scaling = append(report.Scaling, row)
		fmt.Printf("N=%d  warmup %6.1f req/s   warm p50 %7.2f ms  p95 %7.2f ms  %7.1f req/s   %5.2fx single  eff %5.1f%%\n",
			n, row.Warmup.ThroughputRPS, row.Warm.P50Ms, row.Warm.P95Ms, row.Warm.ThroughputRPS,
			row.WarmVsSingle, 100*row.Efficiency)
		lc.Close()
	}

	// Phase 2: cold duplicate storm — cluster-wide single-flight.
	{
		lc, routerURL, err := startFleet(4)
		if err != nil {
			return err
		}
		distinct := nPrograms / 6
		if distinct < 4 {
			distinct = 4
		}
		const dupes = 6
		var wg sync.WaitGroup
		var mu sync.Mutex
		errorsN := 0
		var fatal error
		for i := 0; i < distinct; i++ {
			for d := 0; d < dupes; d++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					body, _ := json.Marshal(requests[i])
					httpResp, err := http.Post(routerURL+"/compile", "application/json", bytes.NewReader(body))
					if err != nil {
						mu.Lock()
						errorsN++
						mu.Unlock()
						return
					}
					var resp server.CompileResponse
					err = json.NewDecoder(httpResp.Body).Decode(&resp)
					httpResp.Body.Close()
					if err != nil || httpResp.StatusCode != http.StatusOK || resp.Error != "" {
						mu.Lock()
						errorsN++
						mu.Unlock()
						return
					}
					if resp.Assembly != local[i] {
						mu.Lock()
						fatal = fmt.Errorf("dedup program %d: served assembly differs from local compile", i)
						mu.Unlock()
					}
				}(i)
			}
		}
		wg.Wait()
		if fatal != nil {
			lc.Close()
			return fatal
		}
		if errorsN != 0 {
			lc.Close()
			return fmt.Errorf("dedup phase: %d request errors in a healthy fleet", errorsN)
		}
		var completed, forwarded, deduped, reqs, recompiled int64
		for _, node := range lc.Nodes {
			c := node.Server().Counters()
			completed += c.Completed.Load()
			forwarded += c.Forwarded.Load()
			deduped += c.Deduped.Load()
			reqs += c.Requests.Load()
			recompiled += c.BlocksRecompiled.Load()
		}
		report.Dedup = clusterDedup{
			DistinctKeys:     distinct,
			Requests:         distinct * dupes,
			ExecutedCompiles: completed - forwarded,
			CompilesPerKey:   float64(recompiled) / float64(distinct*blocksPer),
			DedupRate:        float64(deduped) / float64(reqs),
		}
		fmt.Printf("dedup: %d requests over %d distinct keys -> %d executed compiles, %.2f recompiled blocks per distinct block, dedup rate %.2f\n",
			report.Dedup.Requests, distinct, report.Dedup.ExecutedCompiles, report.Dedup.CompilesPerKey, report.Dedup.DedupRate)
		lc.Close()
	}

	// Phase 3: kill one node of a warm 4-node fleet mid-workload.
	{
		lc, routerURL, err := startFleet(4)
		if err != nil {
			return err
		}
		rg := ring(lc)
		if _, _, _, werrs, err := wave(routerURL, rg); err != nil || werrs != 0 {
			lc.Close()
			if err == nil {
				err = fmt.Errorf("kill-phase warmup: %d request errors", werrs)
			}
			return err
		}
		lc.KillNode(3)
		lat, _, wall, errorsN, err := wave(routerURL, rg)
		if err != nil {
			lc.Close()
			return err
		}
		var forwardErrors, fallbacks int64
		for i := 0; i < 3; i++ {
			c := lc.Nodes[i].Server().Counters()
			forwardErrors += c.ForwardErrors.Load()
			fallbacks += c.LocalFallbacks.Load()
		}
		report.Kill = clusterKill{
			KilledNode:     lc.Nodes[3].Self(),
			Requests:       nPrograms,
			Errors:         errorsN,
			ForwardErrors:  forwardErrors,
			LocalFallbacks: fallbacks,
			P50Ms:          percentileMs(lat, 0.50),
			P95Ms:          percentileMs(lat, 0.95),
			ThroughputRPS:  float64(len(lat)) / wall.Seconds(),
		}
		fmt.Printf("kill: node 3 killed warm; %d requests, %d errors, %d forward errors, %d local fallbacks, p50 %.2f ms, p95 %.2f ms\n",
			nPrograms, errorsN, forwardErrors, fallbacks, report.Kill.P50Ms, report.Kill.P95Ms)
		lc.Close()
	}

	fmt.Println("(every served assembly verified byte-identical to the local compile)")
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}
