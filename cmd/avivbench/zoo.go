package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"aviv"
	"aviv/internal/bench"
	"aviv/internal/zoo"
)

// zooWorkload is the fixed program set every zoo machine compiles: a
// few single-block expression shapes plus multi-block control flow, the
// same family the differential matrix uses. Small enough that the full
// class matrix stays interactive, large enough that spill pressure and
// transfer topology show up in the numbers.
func zooWorkload() map[string]string {
	return map[string]string{
		"expr":   "out = (a + b) - (c * d);\n",
		"logic":  "x = (a & b) | (c ^ d); y = x << 1; z = y >> 2;\n",
		"branch": "if (a > b) { m = a - b; } else { m = b - a; } out = m * c;\n",
		"loop":   "s = 0; for (i = 0; i < 4; i = i + 1) { s = s + a * b; }\n",
		"multi2": bench.MultiBlockSource(2, 9, 6),
		"multi4": bench.MultiBlockSource(4, 9, 6),
	}
}

// zooMachineRow is the per-machine record of the -zoo study.
type zooMachineRow struct {
	Index     int     `json:"index"`
	Class     string  `json:"class"`
	Machine   string  `json:"machine"`
	CodeSize  int     `json:"code_size"`
	Spills    int     `json:"spills"`
	CompileMS float64 `json:"compile_ms"`
}

// zooClassRow aggregates the machines of one class.
type zooClassRow struct {
	Class     string  `json:"class"`
	Machines  int     `json:"machines"`
	CodeSize  float64 `json:"avg_code_size"`
	Spills    float64 `json:"avg_spills"`
	CompileMS float64 `json:"avg_compile_ms"`
}

// zooStudy compiles the fixed workload on every machine of the
// generated zoo (translation validation on), prints the per-class bench
// matrix, and — when path is non-empty — writes the machine-readable
// report consumed by BENCH_zoo.json.
func zooStudy(path string, seed uint64, count int) error {
	entries, err := zoo.Generate(seed, count)
	if err != nil {
		return err
	}
	workload := zooWorkload()
	names := make([]string, 0, len(workload))
	for n := range workload {
		names = append(names, n)
	}
	sort.Strings(names)

	var rows []zooMachineRow
	for _, e := range entries {
		row := zooMachineRow{Index: e.Index, Class: e.Class, Machine: e.M.Name}
		for _, n := range names {
			opts := aviv.DefaultOptions()
			opts.Verify = true
			start := time.Now()
			res, err := aviv.CompileSource(workload[n], e.M, 1, opts)
			if err != nil {
				return fmt.Errorf("zoo m%d (%s) program %s: %w", e.Index, e.Class, n, err)
			}
			row.CompileMS += float64(time.Since(start)) / float64(time.Millisecond)
			row.CodeSize += res.CodeSize()
			row.Spills += res.Metrics.TotalSpills()
		}
		rows = append(rows, row)
	}

	byClass := map[string]*zooClassRow{}
	for _, r := range rows {
		c := byClass[r.Class]
		if c == nil {
			c = &zooClassRow{Class: r.Class}
			byClass[r.Class] = c
		}
		c.Machines++
		c.CodeSize += float64(r.CodeSize)
		c.Spills += float64(r.Spills)
		c.CompileMS += r.CompileMS
	}
	classes := make([]zooClassRow, 0, len(byClass))
	for _, class := range zoo.Classes() {
		if c, ok := byClass[class]; ok {
			n := float64(c.Machines)
			classes = append(classes, zooClassRow{
				Class: c.Class, Machines: c.Machines,
				CodeSize: c.CodeSize / n, Spills: c.Spills / n, CompileMS: c.CompileMS / n,
			})
		}
	}

	fmt.Printf("==== Machine zoo bench matrix (seed %d, %d machines, %d programs, verified) ====\n",
		seed, count, len(names))
	fmt.Printf("%-14s %9s %14s %11s %15s\n", "class", "machines", "avg code size", "avg spills", "avg compile ms")
	for _, c := range classes {
		fmt.Printf("%-14s %9d %14.1f %11.1f %15.1f\n", c.Class, c.Machines, c.CodeSize, c.Spills, c.CompileMS)
	}
	fmt.Println()

	if path == "" {
		return nil
	}
	report := struct {
		Seed     uint64          `json:"seed"`
		Count    int             `json:"count"`
		Programs []string        `json:"programs"`
		Classes  []zooClassRow   `json:"classes"`
		Machines []zooMachineRow `json:"machines"`
	}{Seed: seed, Count: count, Programs: names, Classes: classes, Machines: rows}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n\n", path)
	return nil
}
