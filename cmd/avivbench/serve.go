package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"aviv"
	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/diskcache"
	"aviv/internal/isdl"
	"aviv/internal/server"
)

// servePhase is the latency/throughput summary of one request wave in
// the -serve study.
type servePhase struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// serveReport is the machine-readable -servejson output
// (BENCH_serve.json).
type serveReport struct {
	Benchmark       string       `json:"benchmark"`
	Programs        int          `json:"programs"`
	BlocksPerProg   int          `json:"blocks_per_program"`
	ClientsPerProg  int          `json:"clients_per_program"`
	LocalColdMsPer  float64      `json:"local_cold_ms_per_compile"`
	LocalColdRPS    float64      `json:"local_cold_throughput_rps"`
	Phases          []servePhase `json:"phases"`
	WarmSpeedup     float64      `json:"warm_throughput_vs_local_cold"`
	DiskWarmSpeedup float64      `json:"disk_warm_throughput_vs_local_cold"`
	Deduped         int64        `json:"deduped"`
	DedupRate       float64      `json:"dedup_rate"`
	// DiskCold is the disk tier as the first server instance left it
	// (the cold pass populates it); Disk is the tier as seen by the
	// restarted instance, whose lookups all hit.
	DiskCold diskcache.Stats `json:"disk_cold"`
	Disk     diskcache.Stats `json:"disk"`
}

func percentileMs(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return float64(s[idx]) / 1e6
}

// serveStudy measures the compile-as-a-service path end to end: cold
// single-process compiles as the baseline, then an in-process avivd
// (two-tier cache, single-flight) under concurrent identical clients —
// cold, memory-warm, and disk-warm after a simulated restart. Every
// served assembly is checked byte-identical to the local compile before
// any number is reported. With jsonPath non-empty the report is also
// written as JSON (BENCH_serve.json).
func serveStudy(jsonPath string, nPrograms, opsPerBlock int) error {
	const clientsPerProg = 3
	if nPrograms < 1 {
		nPrograms = 1
	}
	if opsPerBlock < 1 {
		opsPerBlock = 1
	}
	machine, err := isdl.Parse(isdl.ExampleArchFullISDL)
	if err != nil {
		return err
	}
	sources := make([]string, nPrograms)
	for i := range sources {
		sources[i] = bench.MultiBlockSource(int64(i+1), 24, opsPerBlock)
	}

	// Baseline: cold single-process compiles, no cache anywhere.
	local := make([]string, nPrograms)
	blocksPer := 0
	localStart := time.Now()
	for i, src := range sources {
		res, err := aviv.CompileSource(src, machine, 1, aviv.DefaultOptions())
		if err != nil {
			return fmt.Errorf("local compile %d: %w", i, err)
		}
		local[i] = res.Program.String()
		blocksPer = len(res.Blocks)
	}
	localWall := time.Since(localStart)
	localRPS := float64(nPrograms) / localWall.Seconds()

	diskDir, err := os.MkdirTemp("", "avivserve")
	if err != nil {
		return err
	}
	defer os.RemoveAll(diskDir)
	disk, err := diskcache.Open(diskDir, 0)
	if err != nil {
		return err
	}
	newServer := func(d *diskcache.Cache) (*server.Server, *httptest.Server) {
		s := server.New(server.Config{
			Options: aviv.Options{
				Cache:     cover.NewBoundedCache(1024),
				DiskCache: d,
			},
			QueueLimit: 256,
		})
		return s, httptest.NewServer(s.Handler())
	}
	s, ts := newServer(disk)

	// wave fires clientsPerProg concurrent identical requests per
	// program and returns per-request latencies plus the wave wall time.
	wave := func(url string, clients int) ([]time.Duration, time.Duration, error) {
		lat := make([]time.Duration, 0, nPrograms*clients)
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make(chan error, nPrograms*clients)
		start := time.Now()
		for i := 0; i < nPrograms; i++ {
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					body, err := json.Marshal(server.CompileRequest{
						Source:  sources[i],
						Machine: isdl.ExampleArchFullISDL,
						Unroll:  1,
						Preset:  "default",
					})
					if err != nil {
						errs <- err
						return
					}
					t0 := time.Now()
					httpResp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					var resp server.CompileResponse
					err = json.NewDecoder(httpResp.Body).Decode(&resp)
					httpResp.Body.Close()
					d := time.Since(t0)
					if err != nil {
						errs <- err
						return
					}
					if httpResp.StatusCode != http.StatusOK || resp.Error != "" {
						errs <- fmt.Errorf("program %d: HTTP %d, error %q", i, httpResp.StatusCode, resp.Error)
						return
					}
					if resp.Assembly != local[i] {
						errs <- fmt.Errorf("program %d: served assembly differs from local compile", i)
						return
					}
					mu.Lock()
					lat = append(lat, d)
					mu.Unlock()
				}(i)
			}
		}
		wg.Wait()
		wall := time.Since(start)
		close(errs)
		for err := range errs {
			return nil, 0, err
		}
		return lat, wall, nil
	}

	phase := func(name string, lat []time.Duration, wall time.Duration) servePhase {
		return servePhase{
			Name:          name,
			Requests:      len(lat),
			P50Ms:         percentileMs(lat, 0.50),
			P95Ms:         percentileMs(lat, 0.95),
			ThroughputRPS: float64(len(lat)) / wall.Seconds(),
		}
	}

	coldLat, coldWall, err := wave(ts.URL, clientsPerProg)
	if err != nil {
		return err
	}
	warmLat, warmWall, err := wave(ts.URL, clientsPerProg)
	if err != nil {
		return err
	}
	counters := s.Counters().Snapshot()
	diskCold := disk.Stats()
	ts.Close()

	// Simulated restart: fresh process state (empty memory cache), same
	// disk directory.
	restarted, err := diskcache.Open(diskDir, 0)
	if err != nil {
		return err
	}
	_, ts2 := newServer(restarted)
	diskLat, diskWall, err := wave(ts2.URL, 1)
	if err != nil {
		return err
	}
	ts2.Close()

	report := serveReport{
		Benchmark:      "ServeMultiBlock",
		Programs:       nPrograms,
		BlocksPerProg:  blocksPer,
		ClientsPerProg: clientsPerProg,
		LocalColdMsPer: float64(localWall.Milliseconds()) / float64(nPrograms),
		LocalColdRPS:   localRPS,
		Phases: []servePhase{
			phase("cold", coldLat, coldWall),
			phase("warm", warmLat, warmWall),
			phase("disk_warm", diskLat, diskWall),
		},
		Deduped:  counters.Deduped,
		DiskCold: diskCold,
		Disk:     restarted.Stats(),
	}
	if counters.Requests > 0 {
		report.DedupRate = float64(counters.Deduped) / float64(counters.Requests)
	}
	report.WarmSpeedup = report.Phases[1].ThroughputRPS / localRPS
	report.DiskWarmSpeedup = report.Phases[2].ThroughputRPS / localRPS

	fmt.Printf("==== Compile server study (%d programs x %d blocks, %d clients each) ====\n",
		nPrograms, blocksPer, clientsPerProg)
	fmt.Printf("local cold: %.2f ms/compile (%.1f compiles/s)\n",
		report.LocalColdMsPer, localRPS)
	for _, p := range report.Phases {
		fmt.Printf("%-10s %4d reqs   p50 %8.2f ms   p95 %8.2f ms   %8.1f req/s\n",
			p.Name, p.Requests, p.P50Ms, p.P95Ms, p.ThroughputRPS)
	}
	fmt.Printf("warm throughput %.1fx local cold, disk-warm %.1fx; %d deduped (rate %.2f)\n",
		report.WarmSpeedup, report.DiskWarmSpeedup, report.Deduped, report.DedupRate)
	fmt.Printf("disk tier after cold pass: %+v\n", report.DiskCold)
	fmt.Printf("disk tier after restart:   %+v\n", report.Disk)
	fmt.Println("(every served assembly verified byte-identical to the local compile)")

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}
