package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"aviv"
	"aviv/internal/bench"
	"aviv/internal/delta"
	"aviv/internal/isdl"
	"aviv/internal/metrics"
)

// editReport is the machine-readable -editjson output (BENCH_edit.json):
// the incremental-compilation study over an edit stream of one-line
// mutations, comparing a from-scratch recompile against the block-level
// delta path at every step.
type editReport struct {
	Benchmark     string  `json:"benchmark"`
	Programs      int     `json:"programs"`
	EditsPerProg  int     `json:"edits_per_program"`
	BlocksPerProg int     `json:"blocks_per_program"`
	ColdP50Ms     float64 `json:"cold_p50_ms"`
	ColdP95Ms     float64 `json:"cold_p95_ms"`
	EditP50Ms     float64 `json:"edit_p50_ms"`
	EditP95Ms     float64 `json:"edit_p95_ms"`
	SpeedupP50    float64 `json:"speedup_p50"`
	SpeedupP95    float64 `json:"speedup_p95"`
	// BlocksRecompiled / BlocksTotal over every edit compile: the
	// fraction of the program the delta path actually re-covers per
	// one-line edit.
	BlocksTotal      int                `json:"blocks_total"`
	BlocksRecompiled int                `json:"blocks_recompiled"`
	RecompiledRatio  float64            `json:"recompiled_ratio"`
	Delta            metrics.CacheStats `json:"delta"`
}

// editStudy measures the incremental path the delta engine exists for: a
// developer edit loop. Each program is compiled once to warm a
// per-program engine, then nEdits cumulative one-line mutations are
// applied; every step is compiled both from scratch (cold) and through
// the engine (edit), and the outputs are byte-compared before any
// latency is reported. With jsonPath non-empty the report is also
// written as JSON (BENCH_edit.json).
func editStudy(jsonPath string, nPrograms, nEdits int) error {
	if nPrograms < 1 {
		nPrograms = 1
	}
	if nEdits < 1 {
		nEdits = 1
	}
	machine, err := isdl.Parse(isdl.ExampleArchFullISDL)
	if err != nil {
		return err
	}
	opts := aviv.DefaultOptions()

	var coldLat, editLat []time.Duration
	var agg metrics.CacheStats
	blocksPer, blocksTotal, blocksRecompiled := 0, 0, 0
	for p := 0; p < nPrograms; p++ {
		src := bench.MultiBlockSource(int64(p+1), 25, 12)
		eng := delta.New(0, nil)
		if _, err := eng.CompileSource(src, machine, 1, opts); err != nil {
			return fmt.Errorf("program %d warmup: %w", p, err)
		}
		for e := 0; e < nEdits; e++ {
			src = bench.MutateSource(src, int64(p*1000+e))

			t0 := time.Now()
			cold, err := aviv.CompileSource(src, machine, 1, opts)
			if err != nil {
				return fmt.Errorf("program %d edit %d cold: %w", p, e, err)
			}
			coldLat = append(coldLat, time.Since(t0))

			t0 = time.Now()
			inc, err := eng.CompileSource(src, machine, 1, opts)
			if err != nil {
				return fmt.Errorf("program %d edit %d delta: %w", p, e, err)
			}
			editLat = append(editLat, time.Since(t0))

			if inc.Program.String() != cold.Program.String() {
				return fmt.Errorf("program %d edit %d: delta output differs from scratch compile", p, e)
			}
			blocksPer = inc.Blocks
			blocksTotal += inc.Blocks
			blocksRecompiled += inc.Recompiled
		}
		st := eng.Stats()
		agg.Entries += st.Entries
		agg.MemHits += st.MemHits
		agg.MemMisses += st.MemMisses
		agg.DiskHits += st.DiskHits
		agg.DiskMisses += st.DiskMisses
		agg.Stitched += st.Stitched
		agg.Recompiled += st.Recompiled
		agg.Invalidations += st.Invalidations
		agg.Evictions += st.Evictions
	}

	report := editReport{
		Benchmark:        "EditMultiBlock",
		Programs:         nPrograms,
		EditsPerProg:     nEdits,
		BlocksPerProg:    blocksPer,
		ColdP50Ms:        percentileMs(coldLat, 0.50),
		ColdP95Ms:        percentileMs(coldLat, 0.95),
		EditP50Ms:        percentileMs(editLat, 0.50),
		EditP95Ms:        percentileMs(editLat, 0.95),
		BlocksTotal:      blocksTotal,
		BlocksRecompiled: blocksRecompiled,
		Delta:            agg,
	}
	if report.EditP50Ms > 0 {
		report.SpeedupP50 = report.ColdP50Ms / report.EditP50Ms
	}
	if report.EditP95Ms > 0 {
		report.SpeedupP95 = report.ColdP95Ms / report.EditP95Ms
	}
	if blocksTotal > 0 {
		report.RecompiledRatio = float64(blocksRecompiled) / float64(blocksTotal)
	}

	fmt.Printf("==== Incremental compile study (%d programs x %d blocks, %d one-line edits each) ====\n",
		nPrograms, blocksPer, nEdits)
	fmt.Printf("cold full recompile: p50 %8.2f ms   p95 %8.2f ms\n", report.ColdP50Ms, report.ColdP95Ms)
	fmt.Printf("delta edit compile:  p50 %8.2f ms   p95 %8.2f ms\n", report.EditP50Ms, report.EditP95Ms)
	fmt.Printf("speedup: %.1fx at p50, %.1fx at p95; %d/%d blocks recompiled (ratio %.3f)\n",
		report.SpeedupP50, report.SpeedupP95, blocksRecompiled, blocksTotal, report.RecompiledRatio)
	fmt.Printf("%s\n", agg.String())
	fmt.Println("(every delta output verified byte-identical to the from-scratch compile)")

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}
