// Command avivbench regenerates every table and figure of the paper's
// evaluation (Sec. VI) plus the worked examples of Secs. III-IV:
//
//	avivbench -table 1            Table I  (example architecture, Ex1-Ex7)
//	avivbench -table 2            Table II (Architecture II, Ex1-Ex5)
//	avivbench -table 1 -exhaustive  ... including heuristics-off columns
//	avivbench -fig N              Figures 2-9 (worked examples)
//	avivbench -baseline           concurrent vs sequential-phase comparison
//	avivbench -ablation           heuristic knob ablation study
//	avivbench -parscale           parallel block-compilation speedup study
//	avivbench -stats -parallel 4  compile-metrics report at a pool size
//	avivbench -zoo                per-machine-class bench matrix over the machine zoo
//	avivbench -edit               incremental-compilation study (cold vs block-delta path)
//	avivbench -cluster            compile-cluster study (capacity scaling, dedup, kill-one-node)
//	avivbench -all                everything above
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"aviv"
	"aviv/internal/asm"
	"aviv/internal/baseline"
	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/dataflow/diag"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/place"
	"aviv/internal/regalloc"
	"aviv/internal/sim"
	"aviv/internal/sndag"
)

func main() {
	table := flag.Int("table", 0, "reproduce Table 1 or 2")
	fig := flag.Int("fig", 0, "reproduce Figure 2..9")
	exhaustive := flag.Bool("exhaustive", false, "also run heuristics-off (paper's parenthesised columns; slow)")
	baselineFlag := flag.Bool("baseline", false, "compare concurrent covering against the sequential-phase baseline")
	ablation := flag.Bool("ablation", false, "run the heuristic ablation study")
	scaling := flag.Bool("scaling", false, "measure covering effort vs block size")
	rom := flag.Bool("rom", false, "compare code ROM size (instrs x word width) across machines")
	suite := flag.Bool("suite", false, "run the extended DSP kernel suite across machines (simulator-validated)")
	parscale := flag.Bool("parscale", false, "measure parallel block-compilation speedup on a multi-block workload")
	parallel := flag.Int("parallel", 0, "worker-pool size for -stats and the top -parscale row (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print the compile-metrics report for the multi-block workload at -parallel N")
	all := flag.Bool("all", false, "run every table, figure, and study")
	benchJSON := flag.String("benchjson", "", "benchmark the multi-block compile (uncached and cached) and write a JSON report to this file")
	zooFlag := flag.Bool("zoo", false, "run the per-machine-class bench matrix over the generated machine zoo")
	zooJSON := flag.String("zoojson", "", "run the zoo matrix and write a JSON report to this file (implies -zoo)")
	zooSeed := flag.Uint64("zooseed", 1, "machine-zoo generation seed")
	zooCount := flag.Int("zoocount", 27, "number of zoo machines (three cycles over the nine classes)")
	serve := flag.Bool("serve", false, "run the compile-server study (cold/warm/disk-warm latency, throughput, dedup) against an in-process avivd")
	serveJSON := flag.String("servejson", "", "run the compile-server study and write a JSON report to this file (implies -serve)")
	servePrograms := flag.Int("serveprograms", 6, "distinct programs in the compile-server study")
	serveOps := flag.Int("serveops", 12, "straight-line ops per block in the compile-server study workload")
	clusterFlag := flag.Bool("cluster", false, "run the compile-cluster study (capacity scaling at N=1,2,4,8, cluster-wide single-flight dedup, kill-one-node availability) against in-process avivd fleets")
	clusterJSON := flag.String("clusterjson", "", "run the compile-cluster study and write a JSON report to this file (implies -cluster)")
	clusterPrograms := flag.Int("clusterprograms", 96, "distinct programs in the compile-cluster study working set")
	clusterOps := flag.Int("clusterops", 12, "straight-line ops per block in the compile-cluster study workload")
	clusterCap := flag.Int("clustercap", 0, "per-node cache capacity in entries for the cluster study (0 = a third of the working set)")
	edit := flag.Bool("edit", false, "run the incremental-compilation study (edit stream of one-line mutations, cold vs delta-path latency, blocks-recompiled ratio)")
	editJSON := flag.String("editjson", "", "run the incremental-compilation study and write a JSON report to this file (implies -edit)")
	editPrograms := flag.Int("editprograms", 6, "distinct programs in the incremental-compilation study")
	editEdits := flag.Int("editedits", 8, "one-line edits per program in the incremental-compilation study")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	flag.Parse()

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "avivbench:", err)
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	if *all || *table == 1 {
		ran = true
		rows, err := bench.TableI(bench.TableConfig{Exhaustive: *exhaustive || *all, Peephole: true})
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.Format("Table I — example architecture (Fig. 3), Ex6/Ex7 = Ex4/Ex5 with 2 regs/file", rows))
	}
	if *all || *table == 2 {
		ran = true
		rows, err := bench.TableII(bench.TableConfig{Exhaustive: *exhaustive || *all, Peephole: true})
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.Format("Table II — Architecture II (no U3, no SUB on U1)", rows))
	}
	if *fig != 0 || *all {
		ran = true
		figs := []int{*fig}
		if *all {
			figs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
		}
		for _, f := range figs {
			if err := figure(f); err != nil {
				fail(err)
			}
		}
	}
	if *baselineFlag || *all {
		ran = true
		if err := baselineStudy(); err != nil {
			fail(err)
		}
	}
	if *ablation || *all {
		ran = true
		if err := ablationStudy(); err != nil {
			fail(err)
		}
	}
	if *scaling || *all {
		ran = true
		exhUpTo := 6
		if *all {
			exhUpTo = 4 // keep -all under a minute
		}
		rows, err := bench.Scaling(14, exhUpTo)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatScaling(rows))
	}
	if *rom || *all {
		ran = true
		if err := romStudy(); err != nil {
			fail(err)
		}
	}
	if *suite || *all {
		ran = true
		if err := suiteStudy(); err != nil {
			fail(err)
		}
	}
	if *parscale || *all {
		ran = true
		if err := parallelScaleStudy(*parallel); err != nil {
			fail(err)
		}
	}
	if *stats {
		ran = true
		if err := statsReport(*parallel); err != nil {
			fail(err)
		}
	}
	if *benchJSON != "" {
		ran = true
		if err := benchJSONReport(*benchJSON); err != nil {
			fail(err)
		}
	}
	if *zooFlag || *zooJSON != "" {
		ran = true
		if err := zooStudy(*zooJSON, *zooSeed, *zooCount); err != nil {
			fail(err)
		}
	}
	if *serve || *serveJSON != "" {
		ran = true
		if err := serveStudy(*serveJSON, *servePrograms, *serveOps); err != nil {
			fail(err)
		}
	}
	if *clusterFlag || *clusterJSON != "" {
		ran = true
		if err := clusterStudy(*clusterJSON, *clusterPrograms, *clusterOps, *clusterCap); err != nil {
			fail(err)
		}
	}
	if *edit || *editJSON != "" {
		ran = true
		if err := editStudy(*editJSON, *editPrograms, *editEdits); err != nil {
			fail(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// benchRun is one measured configuration in the -benchjson report.
type benchRun struct {
	Name         string  `json:"name"`
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}

// benchJSONReport benchmarks the multi-block workload compile — without
// a cache and with a compile cache shared across iterations — and writes
// the machine-readable report consumed by the performance-tracking files
// (BENCH_cover.json).
func benchJSONReport(path string) error {
	f, _ := parallelWorkload()
	m := isdl.ExampleArchFull(4)

	ref, err := aviv.Compile(f, m, aviv.DefaultOptions())
	if err != nil {
		return err
	}

	measure := func(name string, opts aviv.Options) (benchRun, error) {
		var compileErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := aviv.Compile(f, m, opts); err != nil {
					compileErr = err
					b.FailNow()
				}
			}
		})
		if compileErr != nil {
			return benchRun{}, compileErr
		}
		run := benchRun{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if opts.Cache != nil {
			run.CacheHitRate = opts.Cache.Stats().HitRate()
		}
		return run, nil
	}

	uncached, err := measure("nocache", aviv.DefaultOptions())
	if err != nil {
		return err
	}
	cachedOpts := aviv.DefaultOptions()
	cachedOpts.Cache = cover.NewCache()
	cached, err := measure("cache", cachedOpts)
	if err != nil {
		return err
	}

	report := struct {
		Benchmark    string     `json:"benchmark"`
		Blocks       int        `json:"blocks"`
		Instructions int        `json:"instructions"`
		Runs         []benchRun `json:"runs"`
	}{
		Benchmark:    "CompileMultiBlock",
		Blocks:       len(f.Blocks),
		Instructions: ref.CodeSize(),
		Runs:         []benchRun{uncached, cached},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("==== Compile benchmark (%d blocks) ====\n", len(f.Blocks))
	for _, r := range report.Runs {
		fmt.Printf("%-8s %12.2f ms/op %12d B/op %10d allocs/op", r.Name,
			float64(r.NsPerOp)/1e6, r.BytesPerOp, r.AllocsPerOp)
		if r.CacheHitRate > 0 {
			fmt.Printf("   hit rate %.0f%%", 100*r.CacheHitRate)
		}
		fmt.Println()
	}
	fmt.Printf("report written to %s\n\n", path)
	return nil
}

func figure(n int) error {
	fmt.Printf("==== Figure %d ====\n", n)
	switch n {
	case 1:
		fmt.Println(`Fig. 1 is the compiler framework; it is exercised end to end by
cmd/avivcc (source + ISDL -> assembly -> binary -> simulation) and by
examples/quickstart.`)
	case 2:
		w := bench.Ex1()
		fmt.Println("The example basic block DAG (Ex1): out = (a+b) - (c*d)")
		fmt.Print(w.Block.String())
		fmt.Println("\nGraphviz:")
		fmt.Print(w.Block.DOT())
	case 3:
		fmt.Println(isdl.ExampleArch(4).Describe())
	case 4:
		w := bench.Ex1()
		d, err := sndag.Build(w.Block, isdl.ExampleArch(4))
		if err != nil {
			return err
		}
		fmt.Print(d.Describe())
		fmt.Println("\nGraphviz:")
		fmt.Print(d.DOT())
	case 5:
		w := bench.Ex1()
		opts := cover.DefaultOptions()
		tr := &cover.Trace{}
		opts.Trace = tr
		res, err := cover.CoverBlock(w.Block, isdl.ExampleArch(4), opts)
		if err != nil {
			return err
		}
		fmt.Println("Overall covering algorithm trace for Ex1 (Fig. 5 stages):")
		fmt.Println(tr.String())
		fmt.Print(res.Best.String())
	case 6:
		// The paper's pruning example: the SUB feeds a COMPL on U1.
		bb := ir.NewBuilder("fig6")
		sum := bb.Add(bb.Load("a"), bb.Load("b"))
		prod := bb.Mul(bb.Load("c"), bb.Load("d"))
		bb.Store("out", bb.Op(ir.OpCompl, bb.Sub(sum, prod)))
		bb.Return()
		blk := bb.Finish()
		opts := cover.DefaultOptions()
		tr := &cover.Trace{}
		opts.Trace = tr
		if _, err := cover.CoverBlock(blk, isdl.ExampleArch(4), opts); err != nil {
			return err
		}
		fmt.Println("Assignment search with incremental costs and pruning (X = pruned):")
		for _, l := range tr.Lines {
			fmt.Println(l)
		}
	case 7, 8:
		m := isdl.ExampleArch(4)
		// Reconstruct the paper's {N2, N9, N10, N14} assignment.
		n14 := &cover.SNode{ID: 0, Kind: cover.OpNode, Unit: "U3", Op: ir.OpAdd}
		n9 := &cover.SNode{ID: 1, Kind: cover.MoveNode, Step: isdl.Transfer{
			From: isdl.UnitLoc("U3"), To: isdl.UnitLoc("U2"), Bus: "DB"}}
		n2 := &cover.SNode{ID: 2, Kind: cover.OpNode, Unit: "U2", Op: ir.OpSub}
		n10 := &cover.SNode{ID: 3, Kind: cover.OpNode, Unit: "U2", Op: ir.OpMul}
		cover.Link(n14, n9)
		cover.Link(n9, n2)
		nodes := []*cover.SNode{n14, n9, n2, n10}
		names := []string{"N14", "N9", "N2", "N10"}
		par := cover.ParallelMatrix(nodes, m, -1)
		if n == 7 {
			fmt.Println("Pairwise parallelism matrix (0 = can execute in parallel):")
			fmt.Printf("%6s", "")
			for _, nm := range names {
				fmt.Printf("%5s", nm)
			}
			fmt.Println()
			for i := range nodes {
				fmt.Printf("%6s", names[i])
				for j := range nodes {
					v := 1
					if par[i][j] || i == j { // the paper prints 0 on the diagonal
						v = 0
					}
					fmt.Printf("%5d", v)
				}
				fmt.Println()
			}
		} else {
			fmt.Println("Maximal cliques generated by the Fig. 8 algorithm:")
			for _, c := range cover.GenMaxCliques(par) {
				fmt.Print("  {")
				for i, idx := range c {
					if i > 0 {
						fmt.Print(", ")
					}
					fmt.Print(names[idx])
				}
				fmt.Println("}")
			}
		}
	case 9:
		// Force spills: a 4-tap FIR on a single-issue machine with
		// 2-register files genuinely exceeds the register resources, so
		// the covering inserts load (L) and spill (S) nodes as in the
		// paper's Fig. 9.
		w := bench.FIR(4)
		opts := cover.DefaultOptions()
		tr := &cover.Trace{}
		opts.Trace = tr
		res, err := cover.CoverBlock(w.Block, isdl.SingleIssueDSP(2), opts)
		if err != nil {
			return err
		}
		fmt.Println("Load/spill insertion (4-tap FIR on a 2-register single-issue machine):")
		for _, l := range tr.Lines {
			fmt.Println(l)
		}
		fmt.Printf("\n%d spills inserted; final schedule:\n%s", res.Best.SpillCount, res.Best)
	default:
		return fmt.Errorf("unknown figure %d (supported: 1-9)", n)
	}
	fmt.Println()
	return nil
}

// suiteStudy compiles the extended DSP kernel suite for each machine,
// validates every binary on the simulator against the reference
// interpreter, and prints code sizes.
func suiteStudy() error {
	fmt.Println("==== Extended DSP kernel suite (every cell simulator-validated) ====")
	machines := []*isdl.Machine{
		isdl.ExampleArch(4), isdl.ArchitectureII(4), isdl.SingleIssueDSP(4),
		isdl.WideDSP(4), isdl.ClusteredVLIW(4), isdl.DualMemDSP(4),
	}
	suite := bench.DSPSuite()
	fmt.Printf("%-10s", "kernel")
	for _, m := range machines {
		fmt.Printf("%16s", m.Name)
	}
	fmt.Println()
	for _, w := range suite {
		fmt.Printf("%-10s", w.Name)
		want := map[string]int64{}
		for k, v := range w.Mem {
			want[k] = v
		}
		if _, err := ir.EvalBlock(w.Block, want); err != nil {
			return err
		}
		for _, m := range machines {
			opts := cover.DefaultOptions()
			if len(m.Memories) > 1 {
				// Banked memories: auto-place the variables.
				f := &ir.Func{Name: w.Name, Blocks: []*ir.Block{w.Block}}
				opts.VarPlacement = place.Assign(f, m)
			}
			res, err := cover.CoverBlock(w.Block, m, opts)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", w.Name, m.Name, err)
			}
			alloc, err := regalloc.Allocate(res.Best)
			if err != nil {
				return err
			}
			blk, err := asm.EmitBlock(res.Best, alloc)
			if err != nil {
				return err
			}
			prog := &asm.Program{Machine: m, Blocks: []*asm.Block{blk}}
			got, _, err := sim.RunProgram(prog, w.Mem, 0)
			if err != nil {
				return fmt.Errorf("%s on %s: simulate: %w", w.Name, m.Name, err)
			}
			for k, v := range want {
				if got[k] != v {
					return fmt.Errorf("%s on %s: mem[%s] = %d, want %d", w.Name, m.Name, k, got[k], v)
				}
			}
			fmt.Printf("%16d", res.Best.Cost())
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

// romStudy compares total program ROM bits across machines: the real
// cost behind the paper's minimum-code-size objective (on-chip ROM).
func romStudy() error {
	fmt.Println("==== Code ROM size across machines (Ex1-Ex5 application) ====")
	fmt.Printf("%-16s %10s %8s %10s %10s\n", "machine", "word bits", "instrs", "ROM bits", "hw area")
	for _, m := range []*isdl.Machine{
		isdl.ExampleArch(4), isdl.ArchitectureII(4), isdl.SingleIssueDSP(4), isdl.WideDSP(4),
	} {
		layout := asm.NewWordLayout(m)
		total := 0
		for _, w := range bench.PaperWorkloads() {
			res, err := cover.CoverBlock(w.Block, m, cover.DefaultOptions())
			if err != nil {
				return err
			}
			total += res.Best.Cost()
		}
		fmt.Printf("%-16s %10d %8d %10d %10d\n",
			m.Name, layout.Bits, total, total*layout.Bits, m.HardwareCost())
	}
	fmt.Println()
	return nil
}

// parallelWorkload is the many-block function used by the parallel
// pipeline studies: enough independent covering problems to keep an
// 8-worker pool busy.
func parallelWorkload() (*ir.Func, map[string]int64) {
	return bench.MultiBlock(1, 24, 16)
}

// parallelScaleStudy measures the wall-clock speedup of the parallel
// block-compilation pipeline, verifying that the emitted assembly is
// byte-for-byte identical at every pool size and that the compiled
// program simulates to the reference interpreter's memory state.
func parallelScaleStudy(maxPar int) error {
	f, mem := parallelWorkload()
	m := isdl.ExampleArchFull(4)
	want := map[string]int64{}
	for k, v := range mem {
		want[k] = v
	}
	if err := ir.EvalFunc(f, want, 0); err != nil {
		return err
	}
	fmt.Printf("==== Parallel block compilation (%d blocks, %d CPUs) ====\n",
		len(f.Blocks), runtime.NumCPU())
	if runtime.NumCPU() < 4 {
		fmt.Println("(host has fewer than 4 CPUs: pool sizes above the core count cannot speed up wall clock)")
	}
	fmt.Printf("%-12s %12s %9s %12s\n", "parallelism", "wall", "speedup", "utilization")
	pools := []int{1, 2, 4, 8}
	if maxPar > 8 {
		pools = append(pools, maxPar)
	}
	var refText string
	var refWall time.Duration
	for _, par := range pools {
		opts := aviv.DefaultOptions()
		opts.Parallelism = par
		opts.Verify = true // every parscale compile is also translation-validated
		var res *aviv.CompileResult
		best := time.Duration(1<<63 - 1)
		util := 0.0
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			r, err := aviv.Compile(f, m, opts)
			if err != nil {
				return err
			}
			if d := time.Since(start); d < best {
				best, res, util = d, r, r.Metrics.Utilization()
			}
		}
		text := res.Program.String()
		if par == 1 {
			refText, refWall = text, best
			got, _, err := sim.RunProgram(res.Program, mem, 0)
			if err != nil {
				return err
			}
			for k, v := range want {
				if got[k] != v {
					return fmt.Errorf("parscale: mem[%s] = %d, want %d", k, got[k], v)
				}
			}
		} else if text != refText {
			return fmt.Errorf("parscale: assembly at parallelism %d differs from serial output", par)
		}
		fmt.Printf("%-12d %12v %8.2fx %11.0f%%\n",
			par, best.Round(time.Microsecond), float64(refWall)/float64(best), 100*util)
	}
	fmt.Println("(assembly verified byte-for-byte identical at every pool size)")
	fmt.Println()
	return nil
}

// statsReport prints the compile-metrics report for the multi-block
// workload at the requested pool size.
func statsReport(par int) error {
	f, mem := parallelWorkload()
	_ = mem
	m := isdl.ExampleArchFull(4)
	opts := aviv.DefaultOptions()
	opts.Parallelism = par
	opts.Verify = true // the verify phase shows up in the report below
	res, err := aviv.Compile(f, m, opts)
	if err != nil {
		return err
	}
	// The compile pipeline only runs (and times) the liveness analysis it
	// consumes; fold in a full diagnostics pass so the report shows every
	// analysis timing plus the diagnostic count for the workload.
	rep := diag.Analyze(f)
	res.Metrics.Analysis.ReachingDefs = rep.Metrics.ReachingDefs
	res.Metrics.Analysis.AvailableExprs = rep.Metrics.AvailableExprs
	res.Metrics.Analysis.Dominators = rep.Metrics.Dominators
	res.Metrics.Analysis.Diagnostics = rep.Metrics.Diagnostics
	fmt.Printf("==== Compile metrics (%s, code size %d) ====\n", f.Name, res.CodeSize())
	fmt.Print(res.Metrics.String())
	fmt.Println()
	return nil
}

func baselineStudy() error {
	fmt.Println("==== Concurrent covering vs sequential phase-ordered baseline ====")
	fmt.Printf("%-8s %12s %12s %10s\n", "Block", "concurrent", "sequential", "saving")
	workloads := append(bench.PaperWorkloads(), bench.FIR(8), bench.VectorAdd(6), bench.Chain(10))
	m := isdl.ExampleArch(4)
	for _, w := range workloads {
		conc, err := cover.CoverBlock(w.Block, m, cover.DefaultOptions())
		if err != nil {
			return err
		}
		base, err := baseline.Compile(w.Block, m)
		if err != nil {
			return err
		}
		saving := float64(base.Cost()-conc.Best.Cost()) / float64(base.Cost()) * 100
		fmt.Printf("%-8s %12d %12d %9.1f%%\n", w.Name, conc.Best.Cost(), base.Cost(), saving)
	}
	fmt.Println()
	return nil
}

func ablationStudy() error {
	fmt.Println("==== Heuristic ablation (Ex1-Ex5 on the example architecture) ====")
	configs := []struct {
		name string
		mut  func(*cover.Options)
	}{
		{"default", func(o *cover.Options) {}},
		{"beam=1", func(o *cover.Options) { o.BeamWidth = 1 }},
		{"beam=16", func(o *cover.Options) { o.BeamWidth = 16 }},
		{"no-prune", func(o *cover.Options) { o.PruneIncremental = false }},
		{"no-level-window", func(o *cover.Options) { o.LevelWindow = -1 }},
		{"window=1", func(o *cover.Options) { o.LevelWindow = 1 }},
		{"no-lookahead", func(o *cover.Options) { o.Lookahead = false }},
		{"first-path", func(o *cover.Options) { o.TransferParallelismHeuristic = false }},
		{"spill-aware", func(o *cover.Options) { o.SpillAwareAssignment = true }},
	}
	m := isdl.ExampleArch(4)
	fmt.Printf("%-16s", "config")
	for _, w := range bench.PaperWorkloads() {
		fmt.Printf("%8s", w.Name)
	}
	fmt.Printf("%12s\n", "total time")
	for _, cfg := range configs {
		opts := cover.DefaultOptions()
		cfg.mut(&opts)
		fmt.Printf("%-16s", cfg.name)
		start := time.Now()
		for _, w := range bench.PaperWorkloads() {
			res, err := cover.CoverBlock(w.Block, m, opts)
			if err != nil {
				return err
			}
			fmt.Printf("%8d", res.Best.Cost())
		}
		fmt.Printf("%12v\n", time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	return nil
}
