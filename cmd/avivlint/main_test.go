package main

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aviv/internal/analysis"
)

// TestListOutputPinsPassNames pins the -list surface: the Makefile lint
// target shows it, docs reference it, and the pass names are stable API
// for `avivlint -run`.
func TestListOutputPinsPassNames(t *testing.T) {
	want := []string{
		"layering",
		"determinism",
		"mutexhygiene",
		"lockorder",
		"goroutineleak",
		"ctxflow",
		"errctx",
		"suppress",
	}
	lines := listLines(analysis.All())
	if len(lines) != len(want) {
		t.Fatalf("-list prints %d lines, want %d: %q", len(lines), len(want), lines)
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("-list line %d has no doc: %q", i, line)
		}
		if fields[0] != want[i] {
			t.Errorf("-list line %d names %q, want %q", i, fields[0], want[i])
		}
	}
}

// TestJSONGolden pins the -json output shape byte-for-byte against
// testdata/golden.json: field names, ordering, and indentation are
// stable API for CI consumers.
func TestJSONGolden(t *testing.T) {
	findings := []analysis.Finding{
		{
			Diagnostic: analysis.Diagnostic{
				Message:  "errctx: fmt.Errorf wraps an error value with %v; use %w so errors.Is/As keep working",
				Analyzer: "errctx",
				Fix:      &analysis.Fix{Message: "replace the trailing %v with %w"},
			},
			Position: token.Position{Filename: "internal/diskcache/store.go", Line: 41, Column: 10},
		},
		{
			Diagnostic: analysis.Diagnostic{
				Message:  "ctxflow: blocking channel send outside select; pair it with <-ctx.Done() in a select so cancellation can interrupt it",
				Analyzer: "ctxflow",
			},
			Position: token.Position{Filename: "internal/server/pool.go", Line: 87, Column: 2},
		},
	}
	got, err := marshalFindings(findings)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(golden)) {
		t.Errorf("-json output drifted from testdata/golden.json:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestJSONEmptyIsArray: a clean tree emits [], not null — consumers
// iterate without a null-check.
func TestJSONEmptyIsArray(t *testing.T) {
	got, err := marshalFindings(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "[]" {
		t.Errorf("empty finding set marshals to %q, want []", got)
	}
}
