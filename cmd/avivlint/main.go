// Command avivlint is the multichecker driving the repository's custom
// static-analysis suite (internal/analysis): the layering, determinism,
// mutexhygiene, errctx, and suppress passes.
//
// Usage:
//
//	avivlint [-run name,name] [-fix] [packages]
//	avivlint -list
//
// With no package arguments it checks ./... relative to the current
// directory. Exit status is 0 when the tree is clean, 1 when findings
// remain, 2 on usage or load errors. Findings are suppressed one site
// at a time with //lint:reason <justification> on the flagged line or
// the line above; the suite rejects empty justifications.
//
// -fix applies the mechanical rewrites some findings carry (today:
// errctx's %v -> %w) and reports what it changed; findings without a
// fix are printed as usual and still fail the run.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aviv/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source tree")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runNames != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runNames, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "avivlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avivlint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avivlint: %v\n", err)
		return 2
	}

	if *fix {
		fixed, err := applyFixes(fset, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avivlint: applying fixes: %v\n", err)
			return 2
		}
		var remaining []analysis.Finding
		for _, f := range findings {
			if f.Fix == nil {
				remaining = append(remaining, f)
			}
		}
		fmt.Printf("avivlint: applied %d fix(es)\n", fixed)
		findings = remaining
	}

	for _, f := range findings {
		fmt.Println(relify(f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "avivlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relify renders a finding with the filename relative to the working
// directory when possible, keeping output stable across checkouts.
func relify(f analysis.Finding) string {
	name := f.Position.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s [%s]", name, f.Position.Line, f.Position.Column, f.Message, f.Analyzer)
}

// applyFixes rewrites source files with every suggested fix, applying
// edits back to front per file so earlier offsets stay valid.
func applyFixes(fset *token.FileSet, findings []analysis.Finding) (int, error) {
	type edit struct {
		start, end int
		text       string
	}
	byFile := map[string][]edit{}
	n := 0
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		n++
		for _, e := range f.Fix.Edits {
			pos := fset.Position(e.Pos)
			end := fset.Position(e.End)
			byFile[pos.Filename] = append(byFile[pos.Filename], edit{pos.Offset, end.Offset, e.New})
		}
	}
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return n, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i, e := range edits {
			if i > 0 && e.end > edits[i-1].start {
				return n, fmt.Errorf("%s: overlapping fixes", file)
			}
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return n, fmt.Errorf("%s: fix out of range", file)
			}
			src = append(src[:e.start], append([]byte(e.text), src[e.end:]...)...)
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return n, err
		}
	}
	return n, nil
}
