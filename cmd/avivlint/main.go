// Command avivlint is the multichecker driving the repository's custom
// static-analysis suite (internal/analysis): the layering, determinism,
// mutexhygiene, lockorder, goroutineleak, ctxflow, errctx, and suppress
// passes.
//
// Usage:
//
//	avivlint [-run name,name] [-fix] [-json] [packages]
//	avivlint -list
//
// With no package arguments it checks ./... relative to the current
// directory. Exit status is 0 when the tree is clean, 1 when findings
// remain, 2 on usage or load errors. Findings are suppressed one site
// at a time with //lint:reason <justification> on the flagged line or
// the line above; the suite rejects empty justifications.
//
// -fix applies the mechanical rewrites some findings carry (today:
// errctx's %v -> %w) and reports what it changed; findings without a
// fix are printed as usual and still fail the run.
//
// -json emits the findings as a JSON array (file/line/col/pass/message/
// suggested_fix) for CI and editor integration, instead of the plain
// file:line:col lines.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"aviv/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source tree")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, line := range listLines(analyzers) {
			fmt.Println(line)
		}
		return 0
	}
	if *runNames != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runNames, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "avivlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avivlint: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avivlint: %v\n", err)
		return 2
	}

	if *fix {
		rewritten, fixed, err := analysis.ApplyFixes(fset, findings, os.ReadFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avivlint: applying fixes: %v\n", err)
			return 2
		}
		for file, src := range rewritten {
			if err := os.WriteFile(file, src, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "avivlint: %v\n", err)
				return 2
			}
		}
		var remaining []analysis.Finding
		for _, f := range findings {
			if f.Fix == nil {
				remaining = append(remaining, f)
			}
		}
		fmt.Printf("avivlint: applied %d fix(es)\n", fixed)
		findings = remaining
	}

	if *asJSON {
		out, err := marshalFindings(findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avivlint: %v\n", err)
			return 2
		}
		os.Stdout.Write(out)
		os.Stdout.Write([]byte("\n"))
	} else {
		for _, f := range findings {
			fmt.Println(relify(f))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "avivlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// listLines renders the -list output, one analyzer per line. The lint
// target in the Makefile shows this to developers; the pinning test in
// main_test.go keeps it in sync with the registry.
func listLines(analyzers []*analysis.Analyzer) []string {
	var out []string
	for _, a := range analyzers {
		out = append(out, fmt.Sprintf("%-14s %s", a.Name, a.Doc))
	}
	return out
}

// jsonFinding is the machine-readable diagnostic shape -json emits.
// Field names are stable API for CI consumers; the golden test pins
// them.
type jsonFinding struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Pass         string `json:"pass"`
	Message      string `json:"message"`
	SuggestedFix string `json:"suggested_fix,omitempty"`
}

// marshalFindings renders findings as indented JSON. An empty finding
// set is the empty array, not null — consumers should not need a
// null-check to iterate. HTML escaping is off: messages quote Go
// expressions like <-ctx.Done() and must survive verbatim.
func marshalFindings(findings []analysis.Finding) ([]byte, error) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		jf := jsonFinding{
			File:    relName(f.Position.Filename),
			Line:    f.Position.Line,
			Col:     f.Position.Column,
			Pass:    f.Analyzer,
			Message: f.Message,
		}
		if f.Fix != nil {
			jf.SuggestedFix = f.Fix.Message
		}
		out = append(out, jf)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// relName renders a filename relative to the working directory when
// possible, keeping output stable across checkouts.
func relName(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

// relify renders a finding in the conventional file:line:col form.
func relify(f analysis.Finding) string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]",
		relName(f.Position.Filename), f.Position.Line, f.Position.Column, f.Message, f.Analyzer)
}
