// Command isdldump parses an ISDL-flavored machine description and dumps
// the databases the code generator derives from it (Sec. II of the
// paper): unit repertoires, the op→unit correlation, and the expanded
// (multi-hop) transfer-path database.
//
//	isdldump machine.isdl
//	isdldump -example          # the paper's Fig. 3 machine
//	isdldump -arch2            # the paper's Table II machine
//	isdldump -wide             # the 4-unit MAC machine
//	isdldump -lint machine.isdl  # lint only; nonzero exit on problems
package main

import (
	"flag"
	"fmt"
	"os"

	"aviv/internal/asm"
	"aviv/internal/isdl"
	"aviv/internal/verify"
)

func main() {
	example := flag.Bool("example", false, "dump the paper's example architecture")
	arch2 := flag.Bool("arch2", false, "dump Architecture II")
	wide := flag.Bool("wide", false, "dump the 4-unit WideDSP machine")
	regs := flag.Int("regs", 4, "registers per file for built-in machines")
	lint := flag.Bool("lint", false, "lint the description (verify.LintMachine) and exit nonzero on problems")
	flag.Parse()

	var m *isdl.Machine
	switch {
	case *example:
		m = isdl.ExampleArch(*regs)
	case *arch2:
		m = isdl.ArchitectureII(*regs)
	case *wide:
		m = isdl.WideDSP(*regs)
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "isdldump:", err)
			os.Exit(1)
		}
		// The linter wants the unfinalized description so it can report
		// every problem, not just the first one Finalize trips over.
		if *lint {
			m, err = isdl.ParseRaw(string(src))
		} else {
			m, err = isdl.Parse(string(src))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "isdldump:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *lint {
		if err := verify.LintMachine(m); err != nil {
			for _, v := range err.Violations {
				fmt.Fprintln(os.Stderr, "isdldump:", v.String())
			}
			os.Exit(1)
		}
		fmt.Printf("%s: lints clean\n", m.Name)
		return
	}
	fmt.Print(m.Describe())
	fmt.Printf("hardware area estimate: %d\n", m.HardwareCost())
	fmt.Print(asm.NewWordLayout(m).Describe())
}
