// Command avivcc is the AVIV compiler driver (the paper's Fig. 1 flow):
// it compiles a mini-C source program for a target processor described in
// the ISDL-flavored format, emitting VLIW assembly, optionally a binary
// object, and optionally running the result on the instruction-level
// simulator.
//
//	avivcc -march machine.isdl prog.c
//	avivcc -march machine.isdl -unroll 2 -S prog.c        # assembly only
//	avivcc -march machine.isdl -o prog.avob prog.c        # binary object
//	avivcc -march machine.isdl -run -mem "a=3,b=4" prog.c # compile + simulate
//	avivcc -example                                       # built-in Fig. 3 machine
//	avivcc -exhaustive ...                                # heuristics off
//	avivcc -stats ...                                     # per-block statistics
//	avivcc -analyze prog.c                                # dataflow diagnostics (no machine needed)
//	avivcc -march machine.isdl -cache .avivcache prog.c   # persistent compile cache
//	avivcc -march machine.isdl -delta -cache .avivcache prog.c # incremental block-delta compile
//	avivcc -march machine.isdl -server http://host:8377 prog.c # compile via avivd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"aviv"
	"aviv/internal/asm"
	"aviv/internal/cover"
	"aviv/internal/dataflow/diag"
	"aviv/internal/delta"
	"aviv/internal/diskcache"
	"aviv/internal/isdl"
	"aviv/internal/lang"
	"aviv/internal/server"
	"aviv/internal/sim"
)

func main() {
	march := flag.String("march", "", "path to the ISDL machine description")
	example := flag.Bool("example", false, "use the built-in example architecture (Fig. 3 + compares)")
	regs := flag.Int("regs", 4, "registers per file for -example")
	unroll := flag.Int("unroll", 1, "loop unrolling factor (machine-independent front-end pass)")
	emitAsm := flag.Bool("S", true, "print assembly")
	out := flag.String("o", "", "write the assembled binary object to this file")
	run := flag.Bool("run", false, "simulate the compiled program")
	memFlag := flag.String("mem", "", "initial data memory for -run, e.g. \"a=3,b=4\"")
	exhaustive := flag.Bool("exhaustive", false, "disable the covering heuristics (paper's parenthesised mode)")
	place := flag.String("place", "", "variable memory placement, e.g. \"x=XM,c=YM\" (dual-memory machines)")
	stats := flag.Bool("stats", false, "print per-block code generation statistics and compile metrics")
	trace := flag.Bool("trace", false, "trace simulated instructions")
	parallel := flag.Int("parallel", 0, "block-compilation worker pool size (0 = GOMAXPROCS, 1 = serial; output is identical at any setting)")
	verifyFlag := flag.Bool("verify", false, "run the static translation validator on the compiled output (fails the compile on any violation)")
	analyze := flag.Bool("analyze", false, "run the global dataflow diagnostics on the lowered IR and print findings (no machine description needed)")
	cacheDir := flag.String("cache", "", "persistent compile-cache directory (created if missing; served coverings are re-verified, so stale entries cannot change output)")
	deltaFlag := flag.Bool("delta", false, "compile via the block-level incremental (delta) engine; pair with -cache so per-block artifacts persist and an edited recompile re-covers only changed blocks")
	serverURL := flag.String("server", "", "compile via a running avivd at this base URL (requires -march; falls back to a local compile if the server is unreachable or overloaded)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "avivcc:", err)
		os.Exit(1)
	}

	if *analyze {
		// Diagnostics run on the unoptimized lowered IR — the optimizer
		// would remove exactly the defects (dead stores, unreachable
		// blocks) the programmer should hear about — and need no machine.
		if flag.NArg() != 1 {
			die(fmt.Errorf("need exactly one source file"))
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			die(err)
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			die(err)
		}
		if *unroll > 1 {
			prog = lang.Unroll(prog, *unroll)
		}
		f, err := lang.Lower(prog, "main")
		if err != nil {
			die(err)
		}
		rep := diag.Analyze(f)
		fmt.Print(rep.String())
		if *stats {
			a := rep.Metrics
			fmt.Printf("; analyze: liveness %v, reachdefs %v, avail %v, dom %v, %d diagnostics\n",
				a.Liveness, a.ReachingDefs, a.AvailableExprs, a.Dominators, a.Diagnostics)
		}
		if rep.Metrics.Diagnostics > 0 {
			os.Exit(1)
		}
		return
	}

	var machine *isdl.Machine
	var machineText string
	switch {
	case *example:
		machine = isdl.ExampleArchFull(*regs)
	case *march != "":
		src, err := os.ReadFile(*march)
		if err != nil {
			die(err)
		}
		machineText = string(src)
		machine, err = aviv.LoadMachine(machineText)
		if err != nil {
			die(err)
		}
	default:
		die(fmt.Errorf("need -march <file> or -example"))
	}

	if flag.NArg() != 1 {
		die(fmt.Errorf("need exactly one source file"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		die(err)
	}

	if *serverURL != "" {
		// Thin-client mode: ship source + machine text to avivd and print
		// what comes back (byte-identical to a local compile). Falls
		// through to the local path only if the server cannot answer.
		if machineText == "" {
			die(fmt.Errorf("-server needs -march: the built-in -example machine has no ISDL text to send"))
		}
		if *out != "" || *run || *place != "" {
			die(fmt.Errorf("-o, -run, and -place are local-only; drop -server to use them"))
		}
		preset := "default"
		if *exhaustive {
			preset = "exhaustive"
		}
		resp, err := remoteCompile(*serverURL, server.CompileRequest{
			Source:  string(src),
			Machine: machineText,
			Unroll:  *unroll,
			Preset:  preset,
			Verify:  *verifyFlag,
		})
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "avivcc: server unavailable (%v), compiling locally\n", err)
		case resp.Error != "":
			// A deterministic compile failure: a local retry would fail
			// identically, so report it and stop.
			die(fmt.Errorf("server: %s", resp.Error))
		default:
			if *stats {
				fmt.Printf("; served compile: %d blocks, code size %d, %d cache hits (%d via disk), deduped=%v\n",
					resp.Blocks, resp.CodeSize, resp.CacheHits, resp.DiskHits, resp.Deduped)
			}
			if *emitAsm {
				fmt.Print(resp.Assembly)
			}
			return
		}
	}

	opts := aviv.DefaultOptions()
	if *exhaustive {
		opts = aviv.ExhaustiveOptions()
	}
	opts.Parallelism = *parallel
	opts.Verify = *verifyFlag
	if *cacheDir != "" {
		disk, err := diskcache.Open(*cacheDir, 0)
		if err != nil {
			die(err)
		}
		opts.Cache = cover.NewCache()
		opts.DiskCache = disk
	}
	if *place != "" {
		placement := map[string]string{}
		for _, kv := range strings.Split(*place, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				die(fmt.Errorf("bad -place entry %q", kv))
			}
			placement[parts[0]] = parts[1]
		}
		opts.Cover.VarPlacement = placement
	}
	var prog *asm.Program
	if *deltaFlag {
		// The delta engine pays off across process lifetimes only through
		// the persistent tier, so -cache is the natural companion: the
		// first compile seeds per-block artifacts, an edited recompile
		// stitches every block whose context fingerprint is unchanged.
		eng := delta.New(0, opts.DiskCache)
		dres, err := eng.CompileSource(string(src), machine, *unroll, opts)
		if err != nil {
			die(err)
		}
		prog = dres.Program
		if *stats {
			fmt.Printf("; machine %s, code size %d instructions (incl. control flow)\n",
				machine.Name, dres.CodeSize())
			fmt.Printf("; %s\n", eng.Stats())
			printCacheStats(opts)
		}
	} else {
		res, err := aviv.CompileSource(string(src), machine, *unroll, opts)
		if err != nil {
			die(err)
		}
		prog = res.Program
		if *stats {
			fmt.Printf("; machine %s, code size %d instructions (incl. control flow)\n",
				machine.Name, res.CodeSize())
			for _, br := range res.Blocks {
				fmt.Printf("; block %-8s DAG %3d nodes -> SN-DAG %4d nodes, %2d instrs, %d spills, %d assignments explored, peephole saved %d\n",
					br.Block.Name, len(br.Block.Nodes), br.DAG.Counts.Total(),
					br.Solution.Cost(), br.Solution.SpillCount, br.AssignmentsExplored, br.PeepholeSaved)
			}
			for _, line := range strings.Split(strings.TrimRight(res.Metrics.String(), "\n"), "\n") {
				fmt.Printf("; %s\n", line)
			}
			printCacheStats(opts)
		}
	}
	if *emitAsm {
		fmt.Print(prog.String())
	}
	if *out != "" {
		if err := os.WriteFile(*out, asm.Encode(prog), 0o644); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "avivcc: wrote %s\n", *out)
	}
	if *run {
		mem, err := parseMem(*memFlag)
		if err != nil {
			die(err)
		}
		machineSim := sim.New(prog, mem)
		if *trace {
			machineSim.TraceFn = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		if err := machineSim.Run(0); err != nil {
			die(err)
		}
		fmt.Printf("; simulated %d cycles\n", machineSim.Cycles)
		final := machineSim.Mem()
		keys := make([]string, 0, len(final))
		for k := range final {
			if !strings.HasPrefix(k, "$") {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("; mem[%s] = %d\n", k, final[k])
		}
	}
}

// printCacheStats reports the cover-cache tiers' counters, shared by the
// classic and delta -stats paths.
func printCacheStats(opts aviv.Options) {
	if opts.Cache != nil {
		cs := opts.Cache.Stats()
		fmt.Printf("; memcache: %d entries, %d hits, %d misses, %d evictions\n",
			cs.Entries, cs.Hits, cs.Misses, cs.Evictions)
	}
	if dc, ok := opts.DiskCache.(*diskcache.Cache); ok {
		ds := dc.Stats()
		fmt.Printf("; diskcache %s: %d hits, %d misses, %d writes, %d evictions, %d corrupt, %d bytes\n",
			dc.Dir(), ds.Hits, ds.Misses, ds.Writes, ds.Evictions, ds.Corrupt, ds.Bytes)
	}
}

// remoteCompile posts one compile request to an avivd at base. A non-nil
// error means the server could not answer (unreachable, shedding load,
// or timed out) and the caller should compile locally; deterministic
// compile failures instead arrive in-band in CompileResponse.Error.
func remoteCompile(base string, req server.CompileRequest) (*server.CompileResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	httpResp, err := client.Post(strings.TrimRight(base, "/")+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 256))
		return nil, fmt.Errorf("%s: %s", httpResp.Status, strings.TrimSpace(string(msg)))
	}
	var resp server.CompileResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func parseMem(s string) (map[string]int64, error) {
	mem := map[string]int64{}
	if s == "" {
		return mem, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -mem entry %q", kv)
		}
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -mem value %q: %w", kv, err)
		}
		mem[parts[0]] = v
	}
	return mem, nil
}
