// Command avivcc is the AVIV compiler driver (the paper's Fig. 1 flow):
// it compiles a mini-C source program for a target processor described in
// the ISDL-flavored format, emitting VLIW assembly, optionally a binary
// object, and optionally running the result on the instruction-level
// simulator.
//
//	avivcc -march machine.isdl prog.c
//	avivcc -march machine.isdl -unroll 2 -S prog.c        # assembly only
//	avivcc -march machine.isdl -o prog.avob prog.c        # binary object
//	avivcc -march machine.isdl -run -mem "a=3,b=4" prog.c # compile + simulate
//	avivcc -example                                       # built-in Fig. 3 machine
//	avivcc -exhaustive ...                                # heuristics off
//	avivcc -stats ...                                     # per-block statistics
//	avivcc -analyze prog.c                                # dataflow diagnostics (no machine needed)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"aviv"
	"aviv/internal/asm"
	"aviv/internal/dataflow/diag"
	"aviv/internal/isdl"
	"aviv/internal/lang"
	"aviv/internal/sim"
)

func main() {
	march := flag.String("march", "", "path to the ISDL machine description")
	example := flag.Bool("example", false, "use the built-in example architecture (Fig. 3 + compares)")
	regs := flag.Int("regs", 4, "registers per file for -example")
	unroll := flag.Int("unroll", 1, "loop unrolling factor (machine-independent front-end pass)")
	emitAsm := flag.Bool("S", true, "print assembly")
	out := flag.String("o", "", "write the assembled binary object to this file")
	run := flag.Bool("run", false, "simulate the compiled program")
	memFlag := flag.String("mem", "", "initial data memory for -run, e.g. \"a=3,b=4\"")
	exhaustive := flag.Bool("exhaustive", false, "disable the covering heuristics (paper's parenthesised mode)")
	place := flag.String("place", "", "variable memory placement, e.g. \"x=XM,c=YM\" (dual-memory machines)")
	stats := flag.Bool("stats", false, "print per-block code generation statistics and compile metrics")
	trace := flag.Bool("trace", false, "trace simulated instructions")
	parallel := flag.Int("parallel", 0, "block-compilation worker pool size (0 = GOMAXPROCS, 1 = serial; output is identical at any setting)")
	verifyFlag := flag.Bool("verify", false, "run the static translation validator on the compiled output (fails the compile on any violation)")
	analyze := flag.Bool("analyze", false, "run the global dataflow diagnostics on the lowered IR and print findings (no machine description needed)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "avivcc:", err)
		os.Exit(1)
	}

	if *analyze {
		// Diagnostics run on the unoptimized lowered IR — the optimizer
		// would remove exactly the defects (dead stores, unreachable
		// blocks) the programmer should hear about — and need no machine.
		if flag.NArg() != 1 {
			die(fmt.Errorf("need exactly one source file"))
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			die(err)
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			die(err)
		}
		if *unroll > 1 {
			prog = lang.Unroll(prog, *unroll)
		}
		f, err := lang.Lower(prog, "main")
		if err != nil {
			die(err)
		}
		rep := diag.Analyze(f)
		fmt.Print(rep.String())
		if *stats {
			a := rep.Metrics
			fmt.Printf("; analyze: liveness %v, reachdefs %v, avail %v, dom %v, %d diagnostics\n",
				a.Liveness, a.ReachingDefs, a.AvailableExprs, a.Dominators, a.Diagnostics)
		}
		if rep.Metrics.Diagnostics > 0 {
			os.Exit(1)
		}
		return
	}

	var machine *isdl.Machine
	switch {
	case *example:
		machine = isdl.ExampleArchFull(*regs)
	case *march != "":
		src, err := os.ReadFile(*march)
		if err != nil {
			die(err)
		}
		machine, err = aviv.LoadMachine(string(src))
		if err != nil {
			die(err)
		}
	default:
		die(fmt.Errorf("need -march <file> or -example"))
	}

	if flag.NArg() != 1 {
		die(fmt.Errorf("need exactly one source file"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		die(err)
	}

	opts := aviv.DefaultOptions()
	if *exhaustive {
		opts = aviv.ExhaustiveOptions()
	}
	opts.Parallelism = *parallel
	opts.Verify = *verifyFlag
	if *place != "" {
		placement := map[string]string{}
		for _, kv := range strings.Split(*place, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				die(fmt.Errorf("bad -place entry %q", kv))
			}
			placement[parts[0]] = parts[1]
		}
		opts.Cover.VarPlacement = placement
	}
	res, err := aviv.CompileSource(string(src), machine, *unroll, opts)
	if err != nil {
		die(err)
	}

	if *stats {
		fmt.Printf("; machine %s, code size %d instructions (incl. control flow)\n",
			machine.Name, res.CodeSize())
		for _, br := range res.Blocks {
			fmt.Printf("; block %-8s DAG %3d nodes -> SN-DAG %4d nodes, %2d instrs, %d spills, %d assignments explored, peephole saved %d\n",
				br.Block.Name, len(br.Block.Nodes), br.DAG.Counts.Total(),
				br.Solution.Cost(), br.Solution.SpillCount, br.AssignmentsExplored, br.PeepholeSaved)
		}
		for _, line := range strings.Split(strings.TrimRight(res.Metrics.String(), "\n"), "\n") {
			fmt.Printf("; %s\n", line)
		}
	}
	if *emitAsm {
		fmt.Print(res.Program.String())
	}
	if *out != "" {
		if err := os.WriteFile(*out, asm.Encode(res.Program), 0o644); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "avivcc: wrote %s\n", *out)
	}
	if *run {
		mem, err := parseMem(*memFlag)
		if err != nil {
			die(err)
		}
		machineSim := sim.New(res.Program, mem)
		if *trace {
			machineSim.TraceFn = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		if err := machineSim.Run(0); err != nil {
			die(err)
		}
		fmt.Printf("; simulated %d cycles\n", machineSim.Cycles)
		final := machineSim.Mem()
		keys := make([]string, 0, len(final))
		for k := range final {
			if !strings.HasPrefix(k, "$") {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("; mem[%s] = %d\n", k, final[k])
		}
	}
}

func parseMem(s string) (map[string]int64, error) {
	mem := map[string]int64{}
	if s == "" {
		return mem, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -mem entry %q", kv)
		}
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -mem value %q: %v", kv, err)
		}
		mem[parts[0]] = v
	}
	return mem, nil
}
