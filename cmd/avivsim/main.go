// Command avivsim loads a binary object produced by avivcc -o and runs it
// on the instruction-level simulator (the right-hand side of the paper's
// Fig. 1 flow).
//
//	avivsim -march machine.isdl -mem "a=3,b=4" prog.avob
//	avivsim -example prog.avob
//
// Exit codes (so CI and scripts can gate on the simulator): 0 success,
// 1 usage or I/O error, 2 the program failed to decode/parse or was
// rejected by the static verifier, 3 the simulator trapped.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"aviv/internal/asm"
	"aviv/internal/isdl"
	"aviv/internal/sim"
	"aviv/internal/verify"
)

// Exit codes.
const (
	exitUsage  = 1 // bad flags, unreadable files
	exitDecode = 2 // object/assembly rejected at load or by the verifier
	exitTrap   = 3 // simulator trapped at run time
)

func main() {
	march := flag.String("march", "", "path to the ISDL machine description")
	example := flag.Bool("example", false, "use the paper's example architecture")
	regs := flag.Int("regs", 4, "registers per file for -example")
	memFlag := flag.String("mem", "", "initial data memory, e.g. \"a=3,b=4\"")
	trace := flag.Bool("trace", false, "trace executed instructions")
	maxCycles := flag.Int("max-cycles", 0, "cycle budget (0 = default)")
	disasm := flag.Bool("d", false, "disassemble instead of running")
	asmText := flag.Bool("asm", false, "input is assembly text rather than a binary object")
	assembleTo := flag.String("o", "", "with -asm: assemble to this binary object instead of running")
	verifyFlag := flag.Bool("verify", false, "statically verify the loaded program against the machine before running")
	flag.Parse()

	dieCode := func(code int, err error) {
		fmt.Fprintln(os.Stderr, "avivsim:", err)
		os.Exit(code)
	}
	die := func(err error) { dieCode(exitUsage, err) }

	var machine *isdl.Machine
	switch {
	case *example:
		machine = isdl.ExampleArchFull(*regs)
	case *march != "":
		src, err := os.ReadFile(*march)
		if err != nil {
			die(err)
		}
		machine, err = isdl.Parse(string(src))
		if err != nil {
			die(err)
		}
	default:
		die(fmt.Errorf("need -march <file> or -example"))
	}
	if flag.NArg() != 1 {
		die(fmt.Errorf("need exactly one object file"))
	}
	obj, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		die(err)
	}
	var prog *asm.Program
	if *asmText || strings.HasSuffix(flag.Arg(0), ".s") {
		prog, err = asm.ParseProgram(string(obj), machine)
	} else {
		prog, err = asm.Decode(obj, machine)
	}
	if err != nil {
		dieCode(exitDecode, err)
	}
	if *verifyFlag {
		if verr := verify.Program(prog, nil); verr != nil {
			dieCode(exitDecode, verr)
		}
	}
	if *assembleTo != "" {
		if err := os.WriteFile(*assembleTo, asm.Encode(prog), 0o644); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "avivsim: assembled %s\n", *assembleTo)
		return
	}
	if *disasm {
		fmt.Print(prog.String())
		return
	}

	mem := map[string]int64{}
	if *memFlag != "" {
		for _, kv := range strings.Split(*memFlag, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				die(fmt.Errorf("bad -mem entry %q", kv))
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				die(err)
			}
			mem[parts[0]] = v
		}
	}
	m := sim.New(prog, mem)
	if *trace {
		m.TraceFn = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if err := m.Run(*maxCycles); err != nil {
		dieCode(exitTrap, err)
	}
	fmt.Printf("halted after %d cycles\n", m.Cycles)
	final := m.Mem()
	keys := make([]string, 0, len(final))
	for k := range final {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("mem[%s] = %d\n", k, final[k])
	}
}
