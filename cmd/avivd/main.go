// Command avivd is the AVIV compile server: a long-running daemon that
// serves mini-C -> VLIW compiles over HTTP/JSON, amortizing the
// covering search across requests with a two-tier (memory + disk)
// compile cache, single-flight deduplication of identical in-flight
// requests, and a bounded worker pool with load shedding.
//
// Usage:
//
//	avivd [-listen :8377] [-cache-dir .avivcache] [-cache-max-mb 512]
//	      [-mem-entries 4096] [-parallel N] [-queue N] [-timeout 30s]
//	      [-delta=true] [-delta-entries 4096]
//
// Endpoints:
//
//	POST /compile  {"source": "...", "machine": "<ISDL text>", ...}
//	GET  /stats    server, memory-cache, and disk-cache counters
//	GET  /healthz  liveness probe
//
// Served output is byte-identical to a local `avivcc` compile of the
// same source and machine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aviv"
	"aviv/internal/cover"
	"aviv/internal/diskcache"
	"aviv/internal/server"
)

func main() {
	listen := flag.String("listen", ":8377", "address to listen on")
	cacheDir := flag.String("cache-dir", ".avivcache", "persistent compile-cache directory (empty disables the disk tier)")
	cacheMaxMB := flag.Int64("cache-max-mb", 512, "disk-cache size bound in MiB (<= 0 unbounded)")
	memEntries := flag.Int("mem-entries", 4096, "in-memory compile-cache entry cap (<= 0 unbounded)")
	parallel := flag.Int("parallel", 0, "worker-pool size (<= 0 selects GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queue bound before load shedding (<= 0 selects 4x workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request compile deadline")
	deltaFlag := flag.Bool("delta", true, "serve compiles through the block-level incremental (delta) engine: blocks whose context fingerprint is unchanged since an earlier request stitch from cache")
	deltaEntries := flag.Int("delta-entries", 4096, "delta-engine in-memory artifact entry cap (<= 0 selects the default)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "avivd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(1)
	}

	opts := aviv.Options{
		Cache:       cover.NewBoundedCache(*memEntries),
		Parallelism: *parallel,
	}
	if *cacheDir != "" {
		disk, err := diskcache.Open(*cacheDir, *cacheMaxMB<<20)
		if err != nil {
			log.Fatalf("avivd: opening disk cache: %v", err)
		}
		opts.DiskCache = disk
		log.Printf("avivd: disk cache at %s (max %d MiB)", disk.Dir(), *cacheMaxMB)
	}

	srv := server.New(server.Config{
		Options:      opts,
		QueueLimit:   *queue,
		Timeout:      *timeout,
		Delta:        *deltaFlag,
		DeltaEntries: *deltaEntries,
	})
	log.Printf("avivd: listening on %s (%d workers, queue %s, timeout %v, delta=%v)",
		*listen, srv.Workers(), queueDesc(*queue, srv.Workers()), *timeout, *deltaFlag)
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections and
	// drains in-flight compiles (bounded by the shutdown deadline), so a
	// redeploy does not sever requests mid-compile.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("avivd: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("avivd: shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("avivd: %v", err)
	}
	log.Printf("avivd: stopped")
}

func queueDesc(queue, workers int) string {
	if queue <= 0 {
		return fmt.Sprintf("%d (4x workers)", 4*workers)
	}
	return fmt.Sprint(queue)
}
