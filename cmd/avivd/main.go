// Command avivd is the AVIV compile server: a long-running daemon that
// serves mini-C -> VLIW compiles over HTTP/JSON, amortizing the
// covering search across requests with a two-tier (memory + disk)
// compile cache, single-flight deduplication of identical in-flight
// requests, and a bounded worker pool with load shedding.
//
// Usage:
//
//	avivd [-listen :8377] [-cache-dir .avivcache] [-cache-max-mb 512]
//	      [-mem-entries 4096] [-parallel N] [-queue N] [-timeout 30s]
//	      [-delta=true] [-delta-entries 4096]
//	      [-self URL -peers URL,URL,...] [-probe 1s]
//	avivd -route URL,URL,...
//
// With -peers, the server joins a compile cluster: a consistent-hash
// ring over the member URLs assigns every request key an owning node,
// requests owned by a peer are forwarded there (making the owner's
// single-flight group the cluster-wide dedup point), and cache entries
// peer between nodes in the disk cache's checksummed framing. On
// SIGTERM the node drains: /healthz flips to 503 and locally held
// cache entries bleed to the surviving owners before exit.
//
// With -route, avivd is instead a thin router: it holds no compiler
// and no cache, just computes each request's content key and proxies
// it to the owning node, failing over along the ring when a node is
// down.
//
// Endpoints:
//
//	POST /compile     {"source": "...", "machine": "<ISDL text>", ...}
//	GET  /stats       server, cache, delta, and cluster counters
//	GET  /healthz     liveness probe (503 while draining)
//	GET  /peer/entry  cluster cache peering (nodes only)
//
// Served output is byte-identical to a local `avivcc` compile of the
// same source and machine — standalone, clustered, or routed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aviv"
	"aviv/internal/cluster"
	"aviv/internal/cover"
	"aviv/internal/diskcache"
	"aviv/internal/server"
)

func main() {
	listen := flag.String("listen", ":8377", "address to listen on")
	cacheDir := flag.String("cache-dir", ".avivcache", "persistent compile-cache directory (empty disables the disk tier)")
	cacheMaxMB := flag.Int64("cache-max-mb", 512, "disk-cache size bound in MiB (<= 0 unbounded)")
	memEntries := flag.Int("mem-entries", 4096, "in-memory compile-cache entry cap (<= 0 unbounded)")
	parallel := flag.Int("parallel", 0, "worker-pool size (<= 0 selects GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queue bound before load shedding (<= 0 selects 4x workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request compile deadline")
	deltaFlag := flag.Bool("delta", true, "serve compiles through the block-level incremental (delta) engine: blocks whose context fingerprint is unchanged since an earlier request stitch from cache")
	deltaEntries := flag.Int("delta-entries", 4096, "delta-engine in-memory artifact entry cap (<= 0 selects the default)")
	self := flag.String("self", "", "this node's advertised base URL within -peers (cluster mode)")
	peers := flag.String("peers", "", "comma-separated cluster member base URLs, including -self (cluster mode)")
	route := flag.String("route", "", "comma-separated node base URLs: run as a thin consistent-hash router instead of a compile server")
	probe := flag.Duration("probe", time.Second, "cluster health re-probe interval")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "avivd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(1)
	}

	var (
		handler http.Handler
		// preShutdown runs after the listener stops taking new work and
		// before in-flight requests are drained (cluster drain).
		preShutdown func()
	)
	switch {
	case *route != "":
		if *peers != "" || *self != "" {
			log.Fatalf("avivd: -route is exclusive with -self/-peers (a router holds no compiler)")
		}
		nodes := splitList(*route)
		if len(nodes) == 0 {
			log.Fatalf("avivd: -route needs at least one node URL")
		}
		rt := cluster.NewRouter(cluster.RouterConfig{Nodes: nodes, ProbeInterval: *probe})
		defer rt.Close()
		handler = rt.Handler()
		log.Printf("avivd: routing over %d nodes: %s", len(nodes), strings.Join(nodes, ", "))

	default:
		opts := aviv.Options{
			Cache:       cover.NewBoundedCache(*memEntries),
			Parallelism: *parallel,
		}
		if *cacheDir != "" {
			disk, err := diskcache.Open(*cacheDir, *cacheMaxMB<<20)
			if err != nil {
				log.Fatalf("avivd: opening disk cache: %v", err)
			}
			opts.DiskCache = disk
			log.Printf("avivd: disk cache at %s (max %d MiB)", disk.Dir(), *cacheMaxMB)
		}
		cfg := server.Config{
			Options:      opts,
			QueueLimit:   *queue,
			Timeout:      *timeout,
			Delta:        *deltaFlag,
			DeltaEntries: *deltaEntries,
		}

		if *peers != "" {
			if *self == "" {
				log.Fatalf("avivd: -peers requires -self (this node's URL within the peer list)")
			}
			node := cluster.New(cluster.Config{
				Self:          *self,
				Peers:         splitList(*peers),
				Server:        cfg,
				ProbeInterval: *probe,
			})
			defer node.Close()
			handler = node.Handler()
			preShutdown = func() {
				moved := node.Drain()
				log.Printf("avivd: drained %d cache entries to peers", moved)
			}
			log.Printf("avivd: cluster node %s among %v (%d workers, timeout %v, delta=%v)",
				*self, splitList(*peers), node.Server().Workers(), *timeout, *deltaFlag)
		} else {
			srv := server.New(cfg)
			handler = srv.Handler()
			log.Printf("avivd: listening on %s (%d workers, queue %s, timeout %v, delta=%v)",
				*listen, srv.Workers(), queueDesc(*queue, srv.Workers()), *timeout, *deltaFlag)
		}
	}

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections,
	// runs the cluster drain (when clustered), and finishes in-flight
	// compiles (bounded by the shutdown deadline), so a redeploy does
	// not sever requests mid-compile and does not strand cache entries
	// on the leaving node.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("avivd: signal received, draining")
		if preShutdown != nil {
			preShutdown()
		}
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("avivd: shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("avivd: %v", err)
	}
	log.Printf("avivd: stopped")
}

// splitList parses a comma-separated URL list, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, strings.TrimRight(item, "/"))
		}
	}
	return out
}

func queueDesc(queue, workers int) string {
	if queue <= 0 {
		return fmt.Sprintf("%d (4x workers)", 4*workers)
	}
	return fmt.Sprint(queue)
}
