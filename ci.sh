#!/bin/sh
# ci.sh — the repository's check gate. Run before every commit:
#
#   ./ci.sh          full gate (vet, build, race tests, fuzz smoke)
#   ./ci.sh -short   skip the fuzz smoke
#
# The -race run doubles as the determinism proof for the parallel
# block-compilation pipeline: TestParallelDeterminism compiles the same
# multi-block function at pool sizes 1/2/8 under the race detector.
#
# The lint stage runs the ISDL machine linter over the shipped example
# descriptions and the verifier's mutation self-test (every corruption
# class must be rejected with a diagnostic).
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

# staticcheck is pinned so every environment that does have the binary
# agrees on the rule set. When it is installed, the stage is a hard
# fail — including on a version mismatch, which `make toolinstall`
# resolves. Offline containers without the binary skip with a warning
# (the tool is never downloaded here — CI images bake it in via
# `make toolinstall`).
STATICCHECK_VERSION="2024.1"
echo "== staticcheck (${STATICCHECK_VERSION}) =="
if command -v staticcheck >/dev/null 2>&1; then
    have=$(staticcheck -version 2>/dev/null || true)
    case "$have" in
    *"$STATICCHECK_VERSION"*) ;;
    *)
        echo "error: staticcheck version is '$have', want ${STATICCHECK_VERSION}; run 'make toolinstall' to converge"
        exit 1
        ;;
    esac
    staticcheck ./...
else
    echo "warning: staticcheck not installed; skipping (run 'make toolinstall' in a networked environment)"
fi

echo "== go build =="
go build ./...

echo "== lintsmoke: avivlint static-analysis suite =="
# Hard fail: the layering / determinism / mutexhygiene / lockorder /
# goroutineleak / ctxflow / errctx / suppress passes must be clean on
# the whole tree, each analyzer must still catch its planted-defect
# fixtures, and the tree's //lint:reason suppressions must match the
# checked-in budget. The archtest (TestArchSuite) repeats the tree-wide
# run under plain `go test`, so the race stage below cross-checks it
# too; the concurrency passes also get a dedicated run so a regression
# names the guilty pass in the CI log.
go run ./cmd/avivlint ./...
go run ./cmd/avivlint -run lockorder,goroutineleak,ctxflow ./...
go test -run 'TestAnalyzerFixtureTable|TestErrCtxSuggestedFix|TestErrCtxFixIdempotent|TestSuiteIsSelfClean|TestLayer|TestCheckEdge|TestComponent|TestArchSuite|TestSuppressionBudget|TestCallGraph|TestProgramFactsAndMemo' -count=1 ./internal/analysis
go test -count=1 ./cmd/avivlint
# The interprocedural passes share memoized whole-program state
# (callgraph, facts, channel census) across per-package runs; the
# analysis package must be race-clean on its own, not only inside the
# tree-wide -race stage.
go test -race -count=1 ./internal/analysis

echo "== lint: ISDL machine descriptions =="
for f in examples/machines/*.isdl; do
    go run ./cmd/isdldump -lint "$f"
done

echo "== lint: verifier mutation self-test =="
go test -run 'TestMutation|TestLint' ./internal/verify

echo "== go test -race =="
go test -race ./...

echo "== server differential (race) =="
go test -race -run '^TestServerDifferentialCorpus$' -count=1 .

echo "== zoo smoke (machine generator + differential, race) =="
go test -race -run '^TestZooSmoke$' -count=1 .

echo "== editsmoke: incremental-compilation differential (race, short) =="
# The delta path's byte-identity gate: seeded programs x one-line edit
# streams, stitched output vs from-scratch compile, verifier on,
# interpreter oracle armed, worker pools 1 and 8. -short selects the
# deterministic 12-program subset; the full 50-program sweep runs in the
# tree-wide race stage above.
go test -race -short -run '^TestEditDifferentialCorpus$' -count=1 .

echo "== clustersmoke: cluster differential (race) =="
# The cluster byte-identity gate: the 50-program corpus through a
# 3-node in-process cluster behind the consistent-hash router, by
# concurrent clients, cold + warm + after killing a node mid-run.
# Under -race this is also the data-race gate for the cluster layer.
go test -race -run '^TestClusterDifferentialCorpus$' -count=1 .

if [ "${1:-}" != "-short" ]; then
    echo "== fuzz smoke (FuzzCompileSource, 10s) =="
    go test -run '^$' -fuzz='^FuzzCompileSource$' -fuzztime=10s .

    echo "== bench smoke (every benchmark, one iteration) =="
    go test -run '^$' -bench . -benchtime=1x ./...

    echo "== serve smoke (compile-server study, small workload) =="
    go run ./cmd/avivbench -serve -serveprograms 2 -serveops 4
fi

echo "ci.sh: all checks passed"
