package aviv

import (
	"crypto/sha256"
	"fmt"
	"os"
	"testing"

	"aviv/internal/isdl"
)

// corpusProgramText compiles every difftest corpus program under the
// given preset and returns the concatenated program texts. It is the
// shared substrate of the byte-identical-output checks: the snapshot
// hash below and the cache/pool property tests.
func corpusProgramText(t testing.TB, opts Options) string {
	t.Helper()
	vliw := isdl.ExampleArchFull(4)
	dsp := isdl.SingleIssueDSP(4)
	var all string
	for seed := int64(0); seed < 50; seed++ {
		bitwise := seed%2 == 1
		src, _ := genProgram(seed, bitwise)
		m := vliw
		if bitwise {
			m = dsp
		}
		res, err := CompileSource(src, m, 1, opts)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		all += fmt.Sprintf("== seed %d ==\n%s\n", seed, res.Program)
	}
	return all
}

// TestCorpusSnapshotHash prints a content hash of the compiled difftest
// corpus under both presets when AVIV_CORPUS_HASH is set. It is the
// manual byte-identical-output gate for performance work: record the
// hash before an optimization lands, and the hash after must match.
func TestCorpusSnapshotHash(t *testing.T) {
	if os.Getenv("AVIV_CORPUS_HASH") == "" {
		t.Skip("set AVIV_CORPUS_HASH=1 to print the corpus snapshot hash")
	}
	for _, preset := range []struct {
		name string
		opts Options
	}{
		{"default", DefaultOptions()},
		{"exhaustive", ExhaustiveOptions()},
	} {
		text := corpusProgramText(t, preset.opts)
		t.Logf("corpus hash %s: %x", preset.name, sha256.Sum256([]byte(text)))
	}
}
